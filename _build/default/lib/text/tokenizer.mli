(** Tokenisation for the information-retrieval context of Figure 1.

    The paper's IR indexes map a word (the search value) to postings
    carrying "the byte offset of value v in field F of r_i".  This
    tokenizer produces exactly those pairs: lowercased alphanumeric
    words with their byte offsets, with very short words and a small
    English stopword list dropped (as IR packages of the era did). *)

type token = { word : string; offset : int  (** byte offset in the input *) }

val tokens : ?min_length:int -> ?stopwords:bool -> string -> token list
(** [tokens text] returns in-order tokens.  Defaults: [min_length = 2],
    stopword filtering on.  Words are maximal runs of ASCII letters,
    digits and apostrophes, lowercased; apostrophes are kept inside
    words ("don't") but trimmed at the edges. *)

val is_stopword : string -> bool
(** Membership in the built-in list (lowercase). *)

val distinct_words : ?min_length:int -> ?stopwords:bool -> string -> string list
(** Sorted distinct words of the text. *)
