type token = { word : string; offset : int }

let stopword_list =
  [
    "a"; "an"; "and"; "are"; "as"; "at"; "be"; "but"; "by"; "for"; "from";
    "has"; "he"; "in"; "is"; "it"; "its"; "of"; "on"; "or"; "that"; "the";
    "this"; "to"; "was"; "we"; "were"; "will"; "with"; "you"; "not"; "have";
    "had"; "his"; "her"; "she"; "they"; "them"; "their"; "i"; "my"; "me";
  ]

let stopword_set = Hashtbl.create 64

let () = List.iter (fun w -> Hashtbl.replace stopword_set w ()) stopword_list

let is_stopword w = Hashtbl.mem stopword_set (String.lowercase_ascii w)

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '\''

let tokens ?(min_length = 2) ?(stopwords = true) text =
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_word_char text.[!i] then begin
      let start = !i in
      while !i < n && is_word_char text.[!i] do
        incr i
      done;
      (* trim edge apostrophes *)
      let lo = ref start and hi = ref !i in
      while !lo < !hi && text.[!lo] = '\'' do
        incr lo
      done;
      while !hi > !lo && text.[!hi - 1] = '\'' do
        decr hi
      done;
      let w = String.lowercase_ascii (String.sub text !lo (!hi - !lo)) in
      if
        String.length w >= min_length
        && ((not stopwords) || not (Hashtbl.mem stopword_set w))
      then out := { word = w; offset = !lo } :: !out
    end
    else incr i
  done;
  List.rev !out

let distinct_words ?min_length ?stopwords text =
  tokens ?min_length ?stopwords text
  |> List.map (fun t -> t.word)
  |> List.sort_uniq String.compare
