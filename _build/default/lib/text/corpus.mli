(** Documents -> day batches, and document-level search helpers.

    Bridges real text to the wave index: a document becomes one record;
    each of its distinct words becomes a posting whose [info] carries
    the word's first byte offset in the document (Figure 1's IR
    payload).  Also provides a synthetic article generator (Zipfian
    word choice over a pronounceable vocabulary) so examples and tests
    can run realistic corpora without shipping data. *)

open Wave_storage

type doc = { rid : int; text : string }

val index_documents : Vocab.t -> day:int -> doc list -> Entry.batch
(** One posting per distinct word per document. *)

val parse_query : Vocab.t -> string -> Wave_core.Query.t option
(** Minimal search-box syntax: whitespace-separated words are ANDed; a
    leading '-' negates ("copyright -notice" = copyright AND NOT
    notice).  Words never seen by the vocabulary cannot match: if every
    positive word is unknown the result is [None].  Unknown negated
    words are dropped. *)

(** {1 Synthetic articles} *)

type generator

val generator : ?seed:int -> ?vocab_size:int -> ?zipf_s:float -> unit -> generator
(** A deterministic article source: a [vocab_size]-word pronounceable
    lexicon with Zipfian usage (defaults: seed 11, 5,000 words,
    s = 1.0). *)

val article : generator -> words:int -> string
(** The next article, roughly [words] words of generated prose. *)

val lexicon_word : generator -> int -> string
(** The rank-k word of the generator's lexicon (1-based); useful for
    building queries that will actually hit. *)
