lib/text/corpus.ml: Array Buffer Entry Hashtbl List String Tokenizer Vocab Wave_core Wave_storage Wave_util
