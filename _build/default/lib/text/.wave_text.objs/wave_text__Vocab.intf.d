lib/text/vocab.mli:
