lib/text/vocab.ml: Array Hashtbl List
