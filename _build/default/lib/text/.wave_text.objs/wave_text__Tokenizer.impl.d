lib/text/tokenizer.ml: Hashtbl List String
