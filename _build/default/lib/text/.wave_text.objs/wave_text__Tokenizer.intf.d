lib/text/tokenizer.mli:
