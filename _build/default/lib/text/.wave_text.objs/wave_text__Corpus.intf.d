lib/text/corpus.mli: Entry Vocab Wave_core Wave_storage
