(** Closed-form / cycle-exact evaluation of the paper's analytic model
    (Section 5, Tables 8-11), for every scheme x update technique.

    Rather than hard-coding the tables' simplified averages, each
    scheme's daily maintenance is replayed symbolically over one full
    replacement super-cycle (W days — every cluster expiring once),
    charging the paper's cost parameters ([Build], [Add], [Del], [CP],
    [SMCP]) per operation.  Averages and maxima over the cycle then
    reproduce the tables exactly where they are simple (DEL, REINDEX)
    and exactly-by-construction where the paper rounds (the temporary
    ladders of REINDEX+/++ and RATA). *)

open Wave_core

type summary = {
  pre_avg : float;  (** avg pre-computation seconds per day *)
  pre_max : float;
  trans_avg : float;  (** avg transition seconds per day *)
  trans_max : float;
  space_avg : float;  (** avg bytes held during operation *)
  space_max : float;  (** max bytes held during operation *)
  shadow_avg : float;  (** avg extra bytes during transitions *)
  shadow_max : float;
  probe_seconds : float;  (** one TimedIndexProbe *)
  scan_seconds : float;  (** one TimedSegmentScan *)
  work_per_day : float;
      (** Section 5's Total Work: pre + transition + all queries of a
          day executed serially. *)
}

val evaluate :
  Params.t ->
  scheme:Scheme.kind ->
  technique:Env.technique ->
  w:int ->
  n:int ->
  summary
(** Raises [Invalid_argument] when the scheme cannot run with the given
    [n] (WATA*/RATA* need [n >= 2]; all need [1 <= n <= w]). *)

val constituents_packed :
  scheme:Scheme.kind -> technique:Env.technique -> bool
(** Whether the scheme x technique combination keeps constituent
    indexes packed (REINDEX always; anything under packed shadowing). *)
