(** The paper's three case studies (Section 6, Table 12).

    SCAM — copy detection over a week of Netnews; WSE — a Web search
    engine over 35 days of Netnews; TPC-D — a warehouse wave index on
    [LINEITEM.SUPPKEY] over 100 days.  Parameter values are the paper's
    measured/estimated ones, so the analytic model regenerates the
    figures' absolute magnitudes as well as their shapes. *)

type t = {
  name : string;
  params : Params.t;
  w : int;  (** the scenario's window, days *)
  default_technique : Wave_core.Env.technique;
      (** the technique the paper reports for this scenario *)
}

val scam : t
(** W = 7; 70k articles/day; g = 2.0; Build 1686 s, Add/Del 3341 s;
    100k probes/day over all indexes; 10 scans/day over one index;
    simple shadowing.  [add_scaling_exponent] is calibrated (to 1.7) so
    Figure 10's WATA-vs-REINDEX crossover lands at SF = 3. *)

val wse : t
(** W = 35; 100k articles/day; Build 2276 s, Add/Del 4678 s; 340k
    probes/day; no scans; packed shadowing. *)

val tpcd : t
(** W = 100; TPC-D LINEITEM daily batch; g = 1.08; Build 8406 s,
    Add/Del 11431 s; no probes; 10 whole-window scans/day. *)

val all : t list
val find : string -> t option

val mb : float -> float
(** Megabytes to bytes. *)
