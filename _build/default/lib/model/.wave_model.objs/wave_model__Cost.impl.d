lib/model/cost.ml: Env Float List Params Printf Scheme Split Wave_core
