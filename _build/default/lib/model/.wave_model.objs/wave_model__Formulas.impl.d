lib/model/formulas.ml:
