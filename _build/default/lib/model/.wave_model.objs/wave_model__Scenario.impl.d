lib/model/scenario.ml: List Params String Wave_core
