lib/model/scenario.mli: Params Wave_core
