lib/model/cost.mli: Env Params Scheme Wave_core
