lib/model/formulas.mli:
