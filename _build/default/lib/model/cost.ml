open Wave_core

type summary = {
  pre_avg : float;
  pre_max : float;
  trans_avg : float;
  trans_max : float;
  space_avg : float;
  space_max : float;
  shadow_avg : float;
  shadow_max : float;
  probe_seconds : float;
  scan_seconds : float;
  work_per_day : float;
}

(* One symbolic day of maintenance. *)
type day = {
  pre : float; (* seconds of pre-computation *)
  tr : float; (* seconds of transition (data arrival -> queryable) *)
  space_days : float; (* day-units held at end of day: window + temps + waste *)
  shadow_days : float; (* transient extra day-units during the step *)
}

let constituents_packed ~scheme ~technique =
  match (scheme, technique) with
  | _, Env.Packed_shadow -> true
  | Scheme.Reindex, _ -> true
  | _, (Env.In_place | Env.Simple_shadow) -> false

(* Per-technique operation costs, in seconds, sizes in day-units. *)
module Ops = struct
  type t = {
    add_live : index_days:float -> k:float -> float;
    del_live : index_days:float -> k:float -> float;
    replace_live : index_days:float -> add_k:float -> float * float;
        (* (pre, transition) split of a fused delete-1-add-k step *)
    add_fresh : index_days:float -> k:float -> float;
    copy : days:float -> float;
    build : k:float -> float;
  }

  let make (p : Params.t) technique ~packed =
    let cp d = d *. Params.cp_day p ~packed in
    let smcp d = d *. Params.smcp_day p in
    match technique with
    | Env.In_place ->
      {
        add_live = (fun ~index_days:_ ~k -> k *. p.Params.add);
        del_live = (fun ~index_days:_ ~k -> k *. p.Params.del);
        replace_live =
          (fun ~index_days:_ ~add_k -> (p.Params.del, add_k *. p.Params.add));
        add_fresh = (fun ~index_days:_ ~k -> k *. p.Params.add);
        copy = (fun ~days -> cp days);
        build = (fun ~k -> k *. p.Params.build);
      }
    | Env.Simple_shadow ->
      {
        add_live = (fun ~index_days ~k -> cp index_days +. (k *. p.Params.add));
        del_live = (fun ~index_days ~k -> cp index_days +. (k *. p.Params.del));
        replace_live =
          (fun ~index_days ~add_k ->
            (cp index_days +. p.Params.del, add_k *. p.Params.add));
        add_fresh = (fun ~index_days:_ ~k -> k *. p.Params.add);
        copy = (fun ~days -> cp days);
        build = (fun ~k -> k *. p.Params.build);
      }
    | Env.Packed_shadow ->
      {
        add_live =
          (fun ~index_days ~k -> smcp index_days +. (k *. p.Params.build));
        del_live = (fun ~index_days ~k:_ -> smcp index_days);
        replace_live =
          (fun ~index_days ~add_k ->
            (0.0, smcp index_days +. (add_k *. p.Params.build)));
        add_fresh =
          (fun ~index_days ~k -> smcp index_days +. (k *. p.Params.build));
        copy = (fun ~days -> cp days);
        build = (fun ~k -> k *. p.Params.build);
      }
end

(* Shadow-copy transient space: simple and packed shadowing both hold
   the replacement next to the original during the step. *)
let shadow_of technique days =
  match technique with Env.In_place -> 0.0 | _ -> days

(* ------------------------------------------------------------------ *)
(* Per-scheme daily cost sequences over one super-cycle               *)
(* ------------------------------------------------------------------ *)

let fl = float_of_int

let del_cycle (ops : Ops.t) technique ~w ~n =
  let sizes = Split.sizes ~days:w ~parts:n in
  List.concat_map
    (fun c ->
      let pre, tr = ops.replace_live ~index_days:(fl c) ~add_k:1.0 in
      List.init c (fun _ ->
          { pre; tr; space_days = fl w; shadow_days = shadow_of technique (fl c) }))
    sizes

let reindex_cycle (ops : Ops.t) ~w ~n =
  let sizes = Split.sizes ~days:w ~parts:n in
  List.concat_map
    (fun c ->
      List.init c (fun _ ->
          {
            pre = 0.0;
            tr = ops.build ~k:(fl c);
            space_days = fl w;
            shadow_days = fl c (* the rebuild coexists with the old index *);
          }))
    sizes

let reindex_plus_cycle (ops : Ops.t) technique ~w ~n =
  let sizes = Split.sizes ~days:w ~parts:n in
  List.concat_map
    (fun c ->
      List.init c (fun i ->
          let t = i + 1 in
          let tr, temp_after =
            if c = 1 then (ops.build ~k:1.0, 0.0)
            else if t = 1 then
              ( ops.build ~k:1.0 +. ops.copy ~days:1.0
                +. ops.add_fresh ~index_days:1.0 ~k:(fl (c - 1)),
                1.0 )
            else if t < c then
              ( ops.add_fresh ~index_days:(fl (t - 1)) ~k:1.0
                +. ops.copy ~days:(fl t)
                +. ops.add_fresh ~index_days:(fl t) ~k:(fl (c - t)),
                fl t )
            else (ops.add_fresh ~index_days:(fl (c - 1)) ~k:1.0, 0.0)
          in
          {
            pre = 0.0;
            tr;
            space_days = fl w +. temp_after;
            shadow_days = shadow_of technique (fl c);
          }))
    sizes

let reindex_pp_cycle (ops : Ops.t) ~w ~n =
  let sizes = Split.sizes ~days:w ~parts:n in
  List.concat_map
    (fun c ->
      (* Ladder rung sizes after initialisation for a cluster of c days:
         T_0 = 0, T_m = m for m = 1 .. c-1. *)
      let initialize_cost c' =
        if c' <= 1 then 0.0
        else
          ops.build ~k:1.0
          +. List.fold_left ( +. ) 0.0
               (List.init (c' - 2) (fun i ->
                    let m = i + 2 in
                    ops.copy ~days:(fl (m - 1))
                    +. ops.add_fresh ~index_days:(fl (m - 1)) ~k:1.0))
      in
      List.init c (fun i ->
          let t = i + 1 in
          let tr = ops.add_fresh ~index_days:(fl (c - 1)) ~k:1.0 in
          let pre =
            (* After the swap: top up the next rung (it holds c-1-t old
               days) with the t new days of the cycle so far; at the
               boundary, rebuild the whole ladder instead. *)
            if t < c then ops.add_fresh ~index_days:(fl (c - 1 - t)) ~k:(fl t)
            else initialize_cost c
          in
          (* ladder day-units after this day *)
          let ladder =
            if t = c then fl ((c - 1) * c / 2) (* freshly initialised *)
            else begin
              (* live rungs T_0..T_{c-1-t}; the top holds c-1 days, T_0
                 none, the middle their original sizes *)
              let live = c - t in
              if live <= 1 then fl (c - 1) (* only T_0, holding the new days *)
              else fl ((live - 2) * (live - 1) / 2) +. fl (c - 1)
            end
          in
          { pre; tr; space_days = fl w +. ladder; shadow_days = 0.0 }))
    sizes

let wata_cycle (ops : Ops.t) technique ~w ~n =
  let sizes = Split.sizes ~days:(w - 1) ~parts:(n - 1) in
  List.concat_map
    (fun c ->
      List.init c (fun i ->
          let t = i + 1 in
          if t < c then
            (* Wait: add the new day to the growing last slot (t days),
               while t expired days linger in the oldest cluster. *)
            let pre, tr =
              match technique with
              | Env.In_place -> (0.0, ops.add_live ~index_days:(fl t) ~k:1.0)
              | Env.Simple_shadow ->
                (ops.copy ~days:(fl t), ops.add_fresh ~index_days:(fl t) ~k:1.0)
              | Env.Packed_shadow ->
                (0.0, ops.add_live ~index_days:(fl t) ~k:1.0)
            in
            {
              pre;
              tr;
              space_days = fl (w + t);
              shadow_days = shadow_of technique (fl t);
            }
          else
            (* ThrowAway: constant-time drop plus a one-day build. *)
            { pre = 0.0; tr = ops.build ~k:1.0; space_days = fl w; shadow_days = 0.0 }))
    sizes

let rata_cycle (ops : Ops.t) technique ~w ~n =
  let sizes = Split.sizes ~days:(w - 1) ~parts:(n - 1) in
  List.concat_map
    (fun c ->
      let initialize_cost c' =
        if c' <= 1 then 0.0
        else
          ops.build ~k:1.0
          +. List.fold_left ( +. ) 0.0
               (List.init (c' - 2) (fun i ->
                    let m = i + 2 in
                    ops.copy ~days:(fl (m - 1))
                    +. ops.add_fresh ~index_days:(fl (m - 1)) ~k:1.0))
      in
      List.init c (fun i ->
          let t = i + 1 in
          if t < c then
            let pre, tr =
              match technique with
              | Env.In_place -> (0.0, ops.add_live ~index_days:(fl t) ~k:1.0)
              | Env.Simple_shadow ->
                (ops.copy ~days:(fl t), ops.add_fresh ~index_days:(fl t) ~k:1.0)
              | Env.Packed_shadow ->
                (0.0, ops.add_live ~index_days:(fl t) ~k:1.0)
            in
            (* ladder left after consuming t rungs: sizes 1..c-1-t *)
            let ladder = fl ((c - 1 - t) * (c - t) / 2) in
            {
              pre;
              tr;
              space_days = fl w +. ladder;
              shadow_days = shadow_of technique (fl t);
            }
          else
            {
              pre = initialize_cost c;
              tr = ops.build ~k:1.0;
              space_days = fl w +. fl ((c - 1) * c / 2);
              shadow_days = 0.0;
            }))
    sizes

(* ------------------------------------------------------------------ *)
(* Aggregation                                                        *)
(* ------------------------------------------------------------------ *)

let evaluate (p : Params.t) ~scheme ~technique ~w ~n =
  if n < 1 || n > w then invalid_arg "Cost.evaluate: need 1 <= n <= w";
  if Scheme.min_indexes scheme > n then
    invalid_arg
      (Printf.sprintf "Cost.evaluate: %s needs n >= %d" (Scheme.name scheme)
         (Scheme.min_indexes scheme));
  let packed = constituents_packed ~scheme ~technique in
  let ops = Ops.make p technique ~packed in
  let cycle =
    match scheme with
    | Scheme.Del -> del_cycle ops technique ~w ~n
    | Scheme.Reindex -> reindex_cycle ops ~w ~n
    | Scheme.Reindex_plus -> reindex_plus_cycle ops technique ~w ~n
    | Scheme.Reindex_pp -> reindex_pp_cycle ops ~w ~n
    | Scheme.Wata_star -> wata_cycle ops technique ~w ~n
    | Scheme.Rata_star -> rata_cycle ops technique ~w ~n
  in
  let days = fl (List.length cycle) in
  let sum f = List.fold_left (fun acc d -> acc +. f d) 0.0 cycle in
  let maxi f = List.fold_left (fun acc d -> Float.max acc (f d)) 0.0 cycle in
  let bytes_day = if packed then p.Params.s_packed else p.Params.s_unpacked in
  let avg_space_days = sum (fun d -> d.space_days) /. days in
  let total_days_avg =
    (* days visible to queries: the window plus (for WATA) lingering
       expired days; temporaries are not queried. *)
    match scheme with
    | Scheme.Wata_star ->
      let sizes = Split.sizes ~days:(w - 1) ~parts:(n - 1) in
      let waste =
        List.concat_map (fun c -> List.init c (fun i -> if i + 1 < c then i + 1 else 0)) sizes
      in
      fl w
      +. List.fold_left (fun a x -> a +. fl x) 0.0 waste /. fl (List.length waste)
    | _ -> fl w
  in
  let per_index_days = total_days_avg /. fl n in
  let probe_breadth = if p.Params.probe_all_indexes then fl n else 1.0 in
  let probe_seconds =
    probe_breadth
    *. (p.Params.seek +. (per_index_days *. p.Params.c_bucket /. p.Params.trans))
  in
  let scan_breadth =
    match p.Params.scan_breadth with Params.Scan_all -> fl n | Params.Scan_one -> 1.0
  in
  let scan_seconds =
    scan_breadth
    *. (p.Params.seek +. (per_index_days *. bytes_day /. p.Params.trans))
  in
  let pre_avg = sum (fun d -> d.pre) /. days in
  let trans_avg = sum (fun d -> d.tr) /. days in
  {
    pre_avg;
    pre_max = maxi (fun d -> d.pre);
    trans_avg;
    trans_max = maxi (fun d -> d.tr);
    space_avg = avg_space_days *. bytes_day;
    space_max = maxi (fun d -> d.space_days) *. bytes_day;
    shadow_avg = sum (fun d -> d.shadow_days) /. days *. bytes_day;
    shadow_max = maxi (fun d -> d.shadow_days) *. bytes_day;
    probe_seconds;
    scan_seconds;
    work_per_day =
      pre_avg +. trans_avg
      +. (p.Params.probe_num *. probe_seconds)
      +. (p.Params.scan_num *. scan_seconds);
  }
