(** The paper's closed forms, as stated (Tables 8-11, Theorems 1-3).

    {!Cost.evaluate} replays each scheme's cycle exactly; this module
    instead exposes the simplified symbolic expressions the paper
    prints, with X = W/n and Y = (W-1)/(n-1).  They coincide with the
    cycle-exact evaluation whenever the geometry divides evenly (n | W,
    and (n-1) | (W-1) for the WATA family) — a property the test suite
    checks — and serve as documentation of the model. *)

val x : w:int -> n:int -> float
(** X = W/n, the cluster length of the DEL/REINDEX family. *)

val y : w:int -> n:int -> float
(** Y = (W-1)/(n-1), the WATA-family cluster length ([n >= 2]). *)

(** {1 Theorems} *)

val theorem2_length_bound : w:int -> n:int -> int
(** Maximum wave length of WATA*: [W + ceil((W-1)/(n-1)) - 1]. *)

val theorem3_competitive_ratio : float
(** WATA*'s index-size competitive ratio: 2.0. *)

val kmrv_competitive_ratio : n:int -> float
(** The size-hinted online variant's ratio: n/(n-1). *)

(** {1 Table 8 — space during operation (day-units; multiply by S or S')} *)

val space_days_del : w:int -> float
val space_days_reindex : w:int -> float

val space_days_reindex_plus_avg : w:int -> n:int -> float
(** W + (X-1)/2: the Temp index averages half a cluster. *)

val space_days_reindex_plus_max : w:int -> n:int -> float
(** W + X - 1. *)

val space_days_reindex_pp_max : w:int -> n:int -> float
(** W + X(X-1)/2: the full ladder right after initialisation. *)

val space_days_wata_avg : w:int -> n:int -> float
(** W + (Y-1)/2: expired days linger half a cluster on average. *)

val space_days_wata_max : w:int -> n:int -> float
(** W + Y - 1 (Theorem 2 in day-units). *)

val space_days_rata_max : w:int -> n:int -> float
(** W + Y(Y-1)/2: the suffix ladder right after initialisation. *)

(** {1 Tables 10-11 — maintenance seconds per day} *)

type ops = {
  build : float;  (** seconds per day built *)
  add : float;  (** seconds per day added incrementally *)
  del : float;  (** seconds per day deleted incrementally *)
  cp : float;  (** seconds to copy one day's index *)
  smcp : float;  (** seconds to smart-copy one day *)
}

val del_simple_shadow : ops -> w:int -> n:int -> float * float
(** (pre, transition) = (X·CP + Del, Add) — Table 10's DEL row. *)

val del_packed_shadow : ops -> w:int -> n:int -> float * float
(** (0, X·SMCP + Build) — Table 11's DEL row. *)

val reindex_any : ops -> w:int -> n:int -> float * float
(** (0, X·Build) under every technique. *)

val reindex_pp_transition : ops -> float
(** Add: a single incremental day, whatever W and n are. *)

val wata_transition_avg : ops -> w:int -> n:int -> float
(** ((Y-1)·Add + Build)/Y under in-place updating: mostly Waits, one
    throw-away Build per cluster. *)

(** {1 Table 9 — query seconds} *)

val probe_seconds :
  seek:float -> trans:float -> c_bucket:float -> w:int -> n:int -> probe_idx:int -> float
(** Probe_idx · (seek + X·c/Trans). *)

val scan_seconds :
  seek:float -> trans:float -> bytes_per_day:float -> w:int -> n:int -> scan_idx:int -> float
(** Scan_idx · (seek + X·bytes/Trans). *)
