(** The analytic model's parameters (Section 5).

    Three kinds, as the paper classifies them: hardware (seek,
    transfer), application (day sizes, bucket size, query volumes) and
    implementation (CONTIGUOUS growth factor and the measured
    [Build]/[Add]/[Del] costs).  All per-day quantities describe one
    day's worth of data. *)

type scan_breadth =
  | Scan_all  (** each scan touches every constituent ([Scan_idx = n]) *)
  | Scan_one  (** each scan touches a single constituent *)

type t = {
  (* hardware *)
  seek : float;  (** seconds per seek *)
  trans : float;  (** transfer rate, bytes/second *)
  (* application *)
  s_packed : float;  (** [S]: bytes to store one day packed *)
  s_unpacked : float;  (** [S']: bytes to store one day with CONTIGUOUS slack *)
  c_bucket : float;  (** [c]: bytes of one day's bucket for a random value *)
  probe_num : float;  (** [Probe_num]: timed index probes per day *)
  probe_all_indexes : bool;  (** [Probe_idx = n] (true) or 1 (false) *)
  scan_num : float;  (** [Scan_num]: timed segment scans per day *)
  scan_breadth : scan_breadth;
  (* implementation *)
  g : float;  (** CONTIGUOUS growth factor *)
  build : float;  (** seconds to [BuildIndex] one day *)
  add : float;  (** seconds to [AddToIndex] one day incrementally *)
  del : float;  (** seconds to [DeleteFromIndex] one day incrementally *)
  add_scaling_exponent : float;
      (** How [add]/[del] grow with the data scale factor: [add(SF) =
          add * SF^e].  1.0 = linear.  The paper's Figure 10 measures
          CONTIGUOUS degrading super-linearly as daily volume outgrows
          memory; the SCAM scenario calibrates [e] so the
          WATA-vs-REINDEX crossover lands at SF = 3 as the paper
          reports. *)
}

val scale : t -> float -> t
(** [scale p sf] multiplies the per-day data volumes by [sf]: [S], [S'],
    [c] and [build] linearly; [add]/[del] by [sf ** add_scaling_exponent]. *)

val cp_day : t -> packed:bool -> float
(** [CP]: seconds to copy one day's index (read + flush), depending on
    whether the source is packed. *)

val smcp_day : t -> float
(** [SMCP]: seconds to smart-copy one day — stream the unpacked index
    in, drop expired entries, flush packed. *)

val pp : Format.formatter -> t -> unit
