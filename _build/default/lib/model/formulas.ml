let fl = float_of_int

let x ~w ~n =
  if n < 1 || w < n then invalid_arg "Formulas.x: need 1 <= n <= w";
  fl w /. fl n

let y ~w ~n =
  if n < 2 || w < n then invalid_arg "Formulas.y: need 2 <= n <= w";
  fl (w - 1) /. fl (n - 1)

let theorem2_length_bound ~w ~n = w + ((w - 1 + (n - 2)) / (n - 1)) - 1

let theorem3_competitive_ratio = 2.0

let kmrv_competitive_ratio ~n =
  if n < 2 then invalid_arg "Formulas.kmrv_competitive_ratio: need n >= 2";
  fl n /. fl (n - 1)

let space_days_del ~w = fl w
let space_days_reindex ~w = fl w
let space_days_reindex_plus_avg ~w ~n = fl w +. ((x ~w ~n -. 1.0) /. 2.0)
let space_days_reindex_plus_max ~w ~n = fl w +. x ~w ~n -. 1.0

let space_days_reindex_pp_max ~w ~n =
  let x = x ~w ~n in
  fl w +. (x *. (x -. 1.0) /. 2.0)

let space_days_wata_avg ~w ~n = fl w +. ((y ~w ~n -. 1.0) /. 2.0)
let space_days_wata_max ~w ~n = fl w +. y ~w ~n -. 1.0

let space_days_rata_max ~w ~n =
  let y = y ~w ~n in
  fl w +. (y *. (y -. 1.0) /. 2.0)

type ops = { build : float; add : float; del : float; cp : float; smcp : float }

let del_simple_shadow o ~w ~n = ((x ~w ~n *. o.cp) +. o.del, o.add)
let del_packed_shadow o ~w ~n = (0.0, (x ~w ~n *. o.smcp) +. o.build)
let reindex_any o ~w ~n = (0.0, x ~w ~n *. o.build)
let reindex_pp_transition o = o.add

let wata_transition_avg o ~w ~n =
  let y = y ~w ~n in
  (((y -. 1.0) *. o.add) +. o.build) /. y

let probe_seconds ~seek ~trans ~c_bucket ~w ~n ~probe_idx =
  fl probe_idx *. (seek +. (x ~w ~n *. c_bucket /. trans))

let scan_seconds ~seek ~trans ~bytes_per_day ~w ~n ~scan_idx =
  fl scan_idx *. (seek +. (x ~w ~n *. bytes_per_day /. trans))
