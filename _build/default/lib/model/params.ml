type scan_breadth = Scan_all | Scan_one

type t = {
  seek : float;
  trans : float;
  s_packed : float;
  s_unpacked : float;
  c_bucket : float;
  probe_num : float;
  probe_all_indexes : bool;
  scan_num : float;
  scan_breadth : scan_breadth;
  g : float;
  build : float;
  add : float;
  del : float;
  add_scaling_exponent : float;
}

let scale p sf =
  if sf <= 0.0 then invalid_arg "Params.scale: non-positive scale factor";
  let super = sf ** p.add_scaling_exponent in
  {
    p with
    s_packed = p.s_packed *. sf;
    s_unpacked = p.s_unpacked *. sf;
    c_bucket = p.c_bucket *. sf;
    build = p.build *. sf;
    add = p.add *. super;
    del = p.del *. super;
  }

let cp_day p ~packed =
  let bytes = if packed then p.s_packed else p.s_unpacked in
  2.0 *. bytes /. p.trans

let smcp_day p = (p.s_unpacked +. p.s_packed) /. p.trans

let pp ppf p =
  Format.fprintf ppf
    "seek=%.3fs trans=%.0fB/s S=%.0fB S'=%.0fB c=%.0fB probes=%.0f \
     scans=%.0f g=%.2f build=%.0fs add=%.0fs del=%.0fs"
    p.seek p.trans p.s_packed p.s_unpacked p.c_bucket p.probe_num p.scan_num
    p.g p.build p.add p.del
