type t = {
  name : string;
  params : Params.t;
  w : int;
  default_technique : Wave_core.Env.technique;
}

let mb x = x *. 1024.0 *. 1024.0

let scam =
  {
    name = "SCAM";
    w = 7;
    default_technique = Wave_core.Env.Simple_shadow;
    params =
      {
        Params.seek = 0.014;
        trans = 10.0 *. 1024.0 *. 1024.0;
        s_packed = mb 56.0;
        s_unpacked = mb 78.4;
        c_bucket = 100.0;
        probe_num = 100_000.0;
        probe_all_indexes = true;
        scan_num = 10.0;
        scan_breadth = Params.Scan_one;
        g = 2.0;
        build = 1686.0;
        add = 3341.0;
        del = 3341.0;
        add_scaling_exponent = 1.7;
      };
  }

let wse =
  {
    name = "WSE";
    w = 35;
    default_technique = Wave_core.Env.Packed_shadow;
    params =
      {
        Params.seek = 0.014;
        trans = 10.0 *. 1024.0 *. 1024.0;
        s_packed = mb 75.0;
        s_unpacked = mb 105.0;
        c_bucket = 100.0;
        probe_num = 340_000.0;
        probe_all_indexes = true;
        scan_num = 0.0;
        scan_breadth = Params.Scan_one;
        g = 2.0;
        build = 2276.0;
        add = 4678.0;
        del = 4678.0;
        add_scaling_exponent = 1.7;
      };
  }

let tpcd =
  {
    name = "TPC-D";
    w = 100;
    default_technique = Wave_core.Env.Packed_shadow;
    params =
      {
        Params.seek = 0.014;
        trans = 10.0 *. 1024.0 *. 1024.0;
        s_packed = mb 600.0;
        s_unpacked = mb 627.0;
        c_bucket = 100.0;
        probe_num = 0.0;
        probe_all_indexes = true;
        scan_num = 10.0;
        scan_breadth = Params.Scan_all;
        g = 1.08;
        build = 8406.0;
        add = 11431.0;
        del = 11431.0;
        add_scaling_exponent = 1.2;
      };
  }

let all = [ scam; wse; tpcd ]

let find name =
  let up = String.uppercase_ascii name in
  List.find_opt (fun s -> String.uppercase_ascii s.name = up) all
