(** Netnews-like day batches: the SCAM / Web-search-engine workload.

    The paper indexes daily Usenet postings whose volume swings with
    the day of week — Figure 2 shows September 1997 ranging from about
    30,000 postings on Sundays to 110,000 midweek — and whose words are
    Zipf-distributed [Zip49] (which is why SCAM tuned CONTIGUOUS with
    [g = 2.0]).  This generator reproduces both properties at any
    scale: a weekly volume wave with multiplicative jitter, and
    Zipf-ranked values per posting.

    Day numbering starts at 1; day 1 is a Monday (September 1, 1997
    was a Monday). *)


type config = {
  seed : int;
  vocab : int;  (** distinct search values (word ranks) *)
  zipf_s : float;  (** word-frequency skew (about 1.0 for text) *)
  mean_postings : int;  (** average postings per day across a week *)
  jitter : float;  (** multiplicative day-to-day noise, e.g. 0.1 *)
}

val default_config : config
(** seed 42, 5,000-word vocabulary, s = 1.0, 1,000 postings/day mean,
    10% jitter — a laptop-scale stand-in for the paper's 70k-article
    days. *)

val daily_volume : config -> int -> int
(** [daily_volume cfg day] is the number of postings generated on
    [day]: deterministic in [(cfg.seed, day)]. *)

val weekly_profile : float array
(** Seven relative weights, Monday first; Sunday is the trough at
    roughly 0.3x the midweek peak, matching Figure 2's shape. *)

val store : config -> Wave_core.Env.day_store
(** Memoized batch supplier.  Each posting carries a fresh record id,
    the day as timestamp, and its offset as [info]. *)

val volume_series : config -> days:int -> (int * int) list
(** [(day, postings)] for days [1..days] — the Figure 2 series. *)
