open Wave_storage
open Wave_util

type config = {
  seed : int;
  vocab : int;
  zipf_s : float;
  mean_postings : int;
  jitter : float;
}

let default_config =
  { seed = 42; vocab = 5_000; zipf_s = 1.0; mean_postings = 1_000; jitter = 0.1 }

(* Monday-first weekly weights, normalised to mean 1.0; Sunday trough
   at about 0.3x the Wednesday peak, as in Figure 2. *)
let weekly_profile =
  let raw = [| 1.15; 1.25; 1.35; 1.25; 1.1; 0.5; 0.4 |] in
  let mean = Array.fold_left ( +. ) 0.0 raw /. 7.0 in
  Array.map (fun x -> x /. mean) raw

let day_prng cfg day = Prng.create ((cfg.seed * 1_000_003) + (day * 7919))

let daily_volume cfg day =
  if day < 1 then invalid_arg "Netnews.daily_volume: days start at 1";
  let prng = day_prng cfg day in
  let weekday = (day - 1) mod 7 in
  let base = float_of_int cfg.mean_postings *. weekly_profile.(weekday) in
  let noise = 1.0 +. Prng.gaussian prng ~mean:0.0 ~stddev:cfg.jitter in
  max 1 (int_of_float (base *. Float.max 0.2 noise))

let store cfg =
  let zipf = Zipf.create ~n:cfg.vocab ~s:cfg.zipf_s in
  let cache = Hashtbl.create 64 in
  fun day ->
    match Hashtbl.find_opt cache day with
    | Some b -> b
    | None ->
      let prng = day_prng cfg day in
      (* Skip the draws [daily_volume] consumed so value sampling stays
         independent of the volume path. *)
      let prng = Prng.split prng in
      let volume = daily_volume cfg day in
      let postings =
        Array.init volume (fun i ->
            {
              Entry.value = Zipf.sample zipf prng;
              entry = { Entry.rid = (day * 1_000_000) + i; day; info = i };
            })
      in
      let b = Entry.batch_create ~day postings in
      Hashtbl.add cache day b;
      b

let volume_series cfg ~days =
  List.init days (fun i -> (i + 1, daily_volume cfg (i + 1)))
