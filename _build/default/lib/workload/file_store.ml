let day_filename d = Printf.sprintf "day-%d.wvb" d

let export ~dir ~store ~days =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun d ->
      let path = Filename.concat dir (day_filename d) in
      let oc = open_out_bin path in
      output_string oc (Wave_storage.Codec.encode_batch (store d));
      close_out oc)
    days

let store ~dir =
  let cache = Hashtbl.create 64 in
  fun day ->
    match Hashtbl.find_opt cache day with
    | Some b -> b
    | None ->
      let path = Filename.concat dir (day_filename day) in
      if not (Sys.file_exists path) then
        failwith (Printf.sprintf "File_store: missing %s" path);
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      (match Wave_storage.Codec.decode_batch contents with
      | Error e -> failwith (Printf.sprintf "File_store: %s: %s" path e)
      | Ok b ->
        if b.Wave_storage.Entry.day <> day then
          failwith (Printf.sprintf "File_store: %s holds day %d" path
                      b.Wave_storage.Entry.day);
        Hashtbl.add cache day b;
        b)

let available_days ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match Scanf.sscanf_opt name "day-%d.wvb%!" (fun d -> d) with
           | Some d when day_filename d = name -> Some d
           | _ -> None)
    |> List.sort Int.compare
