(** File-backed day stores.

    A deployment's day batches live on disk as the system of record
    (schemes re-read past days for rebuilds, and recovery replays
    them).  This store materialises any day store into a directory of
    {!Wave_storage.Codec} files — one `day-<d>.wvb` per day — and reads
    them back on demand with an in-memory cache. *)

val day_filename : int -> string
(** ["day-<d>.wvb"]. *)

val export : dir:string -> store:Wave_core.Env.day_store -> days:int list -> unit
(** Write the given days' batches into [dir] (created if missing).
    Existing files are overwritten. *)

val store : dir:string -> Wave_core.Env.day_store
(** A day store reading from [dir].  Raises [Failure] with a diagnostic
    when a day's file is missing or fails to decode — a wave cannot be
    maintained over holes in the record. *)

val available_days : dir:string -> int list
(** Days with a well-named file present, ascending. *)
