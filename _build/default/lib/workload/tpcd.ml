open Wave_storage
open Wave_util

type config = { seed : int; suppliers : int; mean_rows : int; jitter : float }

let default_config = { seed = 7; suppliers = 1_000; mean_rows = 1_000; jitter = 0.05 }

let day_prng cfg day = Prng.create ((cfg.seed * 999_983) + (day * 104_729))

let daily_volume cfg day =
  if day < 1 then invalid_arg "Tpcd.daily_volume: days start at 1";
  let prng = day_prng cfg day in
  let noise = 1.0 +. Prng.gaussian prng ~mean:0.0 ~stddev:cfg.jitter in
  max 1 (int_of_float (float_of_int cfg.mean_rows *. Float.max 0.2 noise))

let store cfg =
  let cache = Hashtbl.create 64 in
  fun day ->
    match Hashtbl.find_opt cache day with
    | Some b -> b
    | None ->
      let prng = Prng.split (day_prng cfg day) in
      let volume = daily_volume cfg day in
      let postings =
        Array.init volume (fun i ->
            {
              Entry.value = 1 + Prng.int prng cfg.suppliers;
              entry =
                {
                  Entry.rid = (day * 1_000_000) + i;
                  day;
                  info = 1 + Prng.int prng 10_000 (* sale amount in cents *);
                };
            })
      in
      let b = Entry.batch_create ~day postings in
      Hashtbl.add cache day b;
      b

let revenue entries =
  List.fold_left (fun acc (e : Entry.t) -> acc + e.Entry.info) 0 entries
