(** TPC-D-like day batches: the warehousing workload of Section 6.

    Models daily insertions into [LINEITEM] indexed on [SUPPKEY]: keys
    are uniformly distributed over the supplier population (which is
    why the paper tuned CONTIGUOUS with [g = 1.08] instead of SCAM's
    2.0), and the daily batch size is steady with mild noise —
    business volume, not the Netnews weekly wave.  Each entry's [info]
    carries a synthetic sale amount so aggregate scans (TPC-D Q1-style
    pricing summaries) have something to total. *)

open Wave_storage

type config = {
  seed : int;
  suppliers : int;  (** SUPPKEY domain size *)
  mean_rows : int;  (** average LINEITEM rows per day *)
  jitter : float;
}

val default_config : config
(** seed 7, 1,000 suppliers, 1,000 rows/day, 5% jitter. *)

val daily_volume : config -> int -> int
val store : config -> Wave_core.Env.day_store

val revenue : Entry.t list -> int
(** Total of the [info] (sale amount) fields — the aggregate a
    Q1-style [TimedSegmentScan] computes. *)
