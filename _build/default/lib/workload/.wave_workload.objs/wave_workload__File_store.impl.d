lib/workload/file_store.ml: Array Filename Hashtbl Int List Printf Scanf Sys Wave_storage
