lib/workload/tpcd.mli: Entry Wave_core Wave_storage
