lib/workload/file_store.mli: Wave_core
