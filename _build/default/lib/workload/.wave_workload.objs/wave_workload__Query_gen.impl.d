lib/workload/query_gen.ml: List Prng Wave_util Zipf
