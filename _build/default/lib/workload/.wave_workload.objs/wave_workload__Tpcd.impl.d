lib/workload/tpcd.ml: Array Entry Float Hashtbl List Prng Wave_storage Wave_util
