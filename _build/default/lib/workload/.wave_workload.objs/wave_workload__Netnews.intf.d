lib/workload/netnews.mli: Wave_core
