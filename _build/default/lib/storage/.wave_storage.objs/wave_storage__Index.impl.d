lib/storage/index.ml: Array Directory Disk Entry Hashtbl Int List Printf Seq Wave_disk
