lib/storage/directory.ml: Btree Hashtbl Int List Option
