lib/storage/directory.mli:
