lib/storage/btree.mli:
