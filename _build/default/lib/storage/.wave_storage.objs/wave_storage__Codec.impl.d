lib/storage/codec.ml: Array Buffer Char Entry List String Sys
