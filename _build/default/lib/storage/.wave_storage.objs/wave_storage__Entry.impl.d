lib/storage/entry.ml: Array Format Hashtbl Int List
