lib/storage/entry.mli: Format
