lib/storage/codec.mli: Entry
