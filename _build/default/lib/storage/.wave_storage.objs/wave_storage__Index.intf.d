lib/storage/index.mli: Directory Disk Entry Wave_disk
