(** Binary serialisation of day batches.

    A deployment checkpoints its day store so the wave can be rebuilt
    after a restart (every scheme's Start phase, and REINDEX-family
    maintenance, re-reads past days).  The format is self-describing
    and safe to read from untrusted files: a magic/version header,
    LEB128 varints with ZigZag for signed fields, and an additive
    checksum verified on decode.

    Layout: magic "WVB1" | day | posting-count | postings (value rid
    info, each delta-free varints) | checksum. *)

val encode_batch : Entry.batch -> string
val decode_batch : string -> (Entry.batch, string) result
(** [decode_batch s] fails (with a diagnostic) on bad magic, truncated
    input, malformed varints, checksum mismatch or trailing bytes. *)

val encode_batches : Entry.batch list -> string
(** Length-prefixed concatenation, e.g. a whole window. *)

val decode_batches : string -> (Entry.batch list, string) result
