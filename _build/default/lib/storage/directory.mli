(** Index directory: search value -> bucket.

    Section 2 assumes the directory is memory-resident; only the
    buckets live on disk.  Two interchangeable implementations are
    provided — a hash table and the {!Btree} — selected at index
    creation.  The B+tree keeps values ordered, which the packed
    builder uses to lay buckets out in value order, and which makes
    ordered scans deterministic. *)

type kind = Hash | Bplus

type 'a t

val create : kind -> 'a t
val kind : 'a t -> kind
val length : 'a t -> int
val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool
val set : 'a t -> int -> 'a -> unit
val remove : 'a t -> int -> unit

val iter_ordered : 'a t -> (int -> 'a -> unit) -> unit
(** Visits bindings in increasing value order for both implementations
    (the hash directory sorts its keys first: O(n log n)). *)

val fold_ordered : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
val values_ordered : 'a t -> int list
