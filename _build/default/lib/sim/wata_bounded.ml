type stats = {
  max_size : int;
  window_max_size : int;
  ratio : float;
  clusters_opened : int;
}

let guaranteed_ratio ~n = float_of_int n /. float_of_int (n - 1)

type cluster = { first : int; mutable last : int; mutable volume : int }

let replay ~w ~n ~m ~sizes =
  if n < 2 then invalid_arg "Wata_bounded.replay: need n >= 2";
  let t = Array.length sizes in
  if t < w then invalid_arg "Wata_bounded.replay: trace shorter than window";
  if m <= 0 then invalid_arg "Wata_bounded.replay: need m > 0";
  let size_of day = sizes.(day - 1) in
  let cap = (m + n - 2) / (n - 1) in
  (* clusters, oldest first; the newest is the growing one *)
  let clusters = ref [ { first = 1; last = 1; volume = size_of 1 } ] in
  let opened = ref 1 in
  let peak = ref (size_of 1) in
  for day = 2 to t do
    (* Drop clusters whose every day has left the window. *)
    let oldest_alive = day - w + 1 in
    clusters := List.filter (fun c -> c.last >= oldest_alive) !clusters;
    let current = List.nth !clusters (List.length !clusters - 1) in
    let slot_free = List.length !clusters < n in
    if current.volume + size_of day > cap && slot_free then begin
      clusters := !clusters @ [ { first = day; last = day; volume = size_of day } ];
      incr opened
    end
    else begin
      current.last <- day;
      current.volume <- current.volume + size_of day
    end;
    let total = List.fold_left (fun acc c -> acc + c.volume) 0 !clusters in
    if total > !peak then peak := total
  done;
  let wmax = Wata_size.window_max ~w ~sizes in
  {
    max_size = !peak;
    window_max_size = wmax;
    ratio = float_of_int !peak /. float_of_int wmax;
    clusters_opened = !opened;
  }
