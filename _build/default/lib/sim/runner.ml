open Wave_core
open Wave_disk

type day_metrics = {
  day : int;
  precompute_seconds : float;
  transition_seconds : float;
  maintenance_seconds : float;
  query_seconds : float;
  probe_entries : int;
  scan_entries : int;
  space_bytes : int;
  wave_length : int;
}

type result = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  days : day_metrics list;
  max_space_bytes : int;
  avg_space_bytes : float;
  total_maintenance_seconds : float;
  total_query_seconds : float;
  total_work_seconds : float;
}

type config = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  run_days : int;
  store : Env.day_store;
  queries : Wave_workload.Query_gen.spec option;
  icfg : Wave_storage.Index.config;
  validate : bool;
}

let default_config ~scheme ~store ~w ~n =
  {
    scheme;
    technique = Env.In_place;
    w;
    n;
    run_days = 2 * w;
    store;
    queries = None;
    icfg = Wave_storage.Index.default_config;
    validate = true;
  }

let run_queries env frame spec ~day =
  let open Wave_workload.Query_gen in
  let disk = env.Env.disk in
  let before = Disk.elapsed disk in
  let probe_entries = ref 0 and scan_entries = ref 0 in
  List.iter
    (fun q ->
      match q with
      | Probe { value; t1; t2 } ->
        probe_entries :=
          !probe_entries + List.length (Frame.timed_index_probe frame ~t1 ~t2 ~value)
      | Scan { t1; t2 } ->
        scan_entries :=
          !scan_entries + List.length (Frame.timed_segment_scan frame ~t1 ~t2))
    (day_queries spec ~day ~w:env.Env.w);
  (Disk.elapsed disk -. before, !probe_entries, !scan_entries)

let run config =
  let disk = Wave_storage.Index.make_disk config.icfg in
  let env =
    Env.create ~disk ~icfg:config.icfg ~technique:config.technique
      ~store:config.store ~w:config.w ~n:config.n ()
  in
  let s = Scheme.start config.scheme env in
  Disk.reset_peak disk;
  let days = ref [] in
  for _ = 1 to config.run_days do
    let before = Disk.elapsed disk in
    Scheme.transition s;
    let maintenance = Disk.elapsed disk -. before in
    let transition = Scheme.last_transition_seconds s in
    if config.validate then begin
      Scheme.check_window_invariant s;
      Frame.validate (Scheme.frame s)
    end;
    let day = Scheme.current_day s in
    let query_seconds, probe_entries, scan_entries =
      match config.queries with
      | None -> (0.0, 0, 0)
      | Some spec -> run_queries env (Scheme.frame s) spec ~day
    in
    days :=
      {
        day;
        precompute_seconds = Float.max 0.0 (maintenance -. transition);
        transition_seconds = transition;
        maintenance_seconds = maintenance;
        query_seconds;
        probe_entries;
        scan_entries;
        space_bytes = Scheme.allocated_bytes s;
        wave_length = Frame.length (Scheme.frame s);
      }
      :: !days
  done;
  let days = List.rev !days in
  let nd = float_of_int (max 1 (List.length days)) in
  let sum f = List.fold_left (fun acc d -> acc +. f d) 0.0 days in
  let maintenance = sum (fun d -> d.maintenance_seconds) in
  let queries = sum (fun d -> d.query_seconds) in
  {
    scheme = config.scheme;
    technique = config.technique;
    w = config.w;
    n = config.n;
    days;
    max_space_bytes =
      Disk.peak_blocks disk * (Disk.params disk).Disk.block_size;
    avg_space_bytes = sum (fun d -> float_of_int d.space_bytes) /. nd;
    total_maintenance_seconds = maintenance;
    total_query_seconds = queries;
    total_work_seconds = maintenance +. queries;
  }
