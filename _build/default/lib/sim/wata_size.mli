(** Size-only WATA* dynamics over a day-volume trace.

    Section 3.3 distinguishes index {e length} (days held) from index
    {e size} (storage held) when day volumes vary, and Section 6's
    Figure 11 measures the {e index size ratio}: the maximum storage
    WATA*'s lazy deletion ever requires divided by the maximum an eager
    hard-window scheme requires over the same trace.  Theorem 3 bounds
    the ratio by 2.  This module replays WATA*'s cluster dynamics
    symbolically over a volume sequence — no actual index is built, so
    200-day traces evaluate instantly. *)

type stats = {
  wata_max_size : int;  (** peak day-volume units WATA* holds *)
  window_max_size : int;
      (** peak any eager scheme must hold: max over sliding windows *)
  ratio : float;  (** [wata_max_size / window_max_size], Figure 11's y-axis *)
  wata_max_length : int;  (** peak number of days held *)
}

val replay : w:int -> n:int -> sizes:int array -> stats
(** [replay ~w ~n ~sizes] runs WATA* over days [1 .. Array.length
    sizes] (sizes.(i) is day i+1's volume).  Requires [n >= 2] and
    [Array.length sizes >= w]. *)

val window_max : w:int -> sizes:int array -> int
(** Max sum over any [w] consecutive days. *)
