open Wave_core

type report = {
  technique : Env.technique;
  avg_wait_seconds : float;
  p95_wait_seconds : float;
  blocked_fraction : float;
  avg_maintenance_seconds : float;
}

let measure ?(seed = 4242) ?(day_seconds = 86_400.0) ~scheme ~technique ~store
    ~w ~n ~days ~queries_per_day () =
  if days < 1 || queries_per_day < 1 then
    invalid_arg "Contention.measure: need positive days and queries";
  let env = Env.create ~technique ~store ~w ~n () in
  let s = Scheme.start scheme env in
  let prng = Wave_util.Prng.create seed in
  let waits = ref [] in
  let busy_total = ref 0.0 in
  for _ = 1 to days do
    let before = Wave_disk.Disk.elapsed env.Env.disk in
    Scheme.transition s;
    let busy =
      match technique with
      | Env.In_place ->
        (* the whole maintenance interval holds the write lock *)
        Wave_disk.Disk.elapsed env.Env.disk -. before
      | Env.Simple_shadow | Env.Packed_shadow ->
        (* queries run against the old version; only the swap locks,
           which we charge as a single seek's worth of time *)
        (Wave_disk.Disk.params env.Env.disk).Wave_disk.Disk.seek_time
    in
    busy_total := !busy_total +. busy;
    for _ = 1 to queries_per_day do
      let arrival = Wave_util.Prng.float prng day_seconds in
      let wait = if arrival < busy then busy -. arrival else 0.0 in
      waits := wait :: !waits
    done
  done;
  let arr = Array.of_list !waits in
  let blocked = Array.fold_left (fun acc x -> if x > 0.0 then acc + 1 else acc) 0 arr in
  {
    technique;
    avg_wait_seconds = Wave_util.Stats.mean arr;
    p95_wait_seconds = Wave_util.Stats.percentile arr 95.0;
    blocked_fraction = float_of_int blocked /. float_of_int (Array.length arr);
    avg_maintenance_seconds = !busy_total /. float_of_int days;
  }

let compare_table ?day_seconds ~scheme ~store ~w ~n ~days ~queries_per_day () =
  let rows =
    List.map
      (fun technique ->
        let r =
          measure ?day_seconds ~scheme ~technique ~store ~w ~n ~days
            ~queries_per_day ()
        in
        [
          Env.technique_name technique;
          Printf.sprintf "%.4f" r.avg_maintenance_seconds;
          Printf.sprintf "%.4f" r.avg_wait_seconds;
          Printf.sprintf "%.4f" r.p95_wait_seconds;
          Printf.sprintf "%.4f%%" (100.0 *. r.blocked_fraction);
        ])
      [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ]
  in
  Printf.sprintf
    "# Query blocking under concurrency control (%s, W=%d, n=%d, %d days)\n%s\n\
     paper: in-place updating needs concurrency control; shadowing lets\n\
     queries run on the old index until an atomic swap.\n"
    (Scheme.name scheme) w n days
    (Wave_util.Table_print.render
       ~header:
         [ "technique"; "lock held s/day"; "avg wait s"; "p95 wait s"; "blocked" ]
       ~rows)
