type schedule = { boundaries : int list; max_size : int }

let prefix sizes =
  let t = Array.length sizes in
  let p = Array.make (t + 1) 0 in
  for i = 1 to t do
    p.(i) <- p.(i - 1) + sizes.(i - 1)
  done;
  p

(* Direct evaluator over a boundary list: storage at day d is the volume
   from the start of the oldest live cluster (the one containing day
   d - w + 1) through d. *)
let size_of_schedule ~w ~sizes ~boundaries =
  let t = Array.length sizes in
  let p = prefix sizes in
  let rec check_sorted prev = function
    | [] -> ()
    | b :: rest ->
      if b <= prev || b > t then
        invalid_arg "Wata_offline.size_of_schedule: bad boundary list";
      check_sorted b rest
  in
  check_sorted 0 boundaries;
  let arr = Array.of_list boundaries in
  let peak = ref 0 in
  for d = 1 to t do
    (* largest boundary <= d - w, else 0 *)
    let rec search lo hi acc =
      if lo > hi then acc
      else
        let mid = (lo + hi) / 2 in
        if arr.(mid) <= d - w then search (mid + 1) hi arr.(mid)
        else search lo (mid - 1) acc
    in
    let pd = search 0 (Array.length arr - 1) 0 in
    let cost = p.(d) - p.(pd) in
    if cost > !peak then peak := cost
  done;
  !peak

(* Feasibility for a storage budget, by memoized search.

   A schedule is a boundary sequence 0 = b_0 < b_1 < ... ; the segment
   after b_k is the oldest live cluster for days up to b_{k+1} + w - 1,
   so the budget imposes P[min(T, b_{k+1}+w-1)] - P[b_k] <= budget, and
   the n slots impose that any w-1 consecutive days contain at most
   n - 1 boundaries.  Only boundaries within the last w - 2 days of the
   newest can interact with future placements, so that suffix is the
   whole search state. *)
let feasible_with ~w ~n ~sizes ~budget =
  let t = Array.length sizes in
  let p = prefix sizes in
  let span b d = p.(min t d) - p.(b) in
  let memo : (int list, bool) Hashtbl.t = Hashtbl.create 1024 in
  (* state: boundaries in (b - (w-1), b], newest first; [] = start *)
  let rec solve state =
    match Hashtbl.find_opt memo state with
    | Some r -> r
    | None ->
      let b = match state with [] -> 0 | b :: _ -> b in
      let r =
        if span b t <= budget then true
        else begin
          (* next boundary candidates, newest allowed first *)
          let rec try_next b' =
            if b' <= b then false
            else if span b (b' + w - 1) > budget then try_next (b' - 1)
            else begin
              let recent =
                b' :: List.filter (fun x -> x > b' - (w - 1)) state
              in
              if List.length recent <= n - 1 && solve recent then true
              else try_next (b' - 1)
            end
          in
          try_next t
        end
      in
      Hashtbl.add memo state r;
      r
  in
  if not (solve []) then None
  else begin
    (* Reconstruct one witness greedily along the memoized table. *)
    let boundaries = ref [] in
    let rec walk state =
      let b = match state with [] -> 0 | b :: _ -> b in
      if span b t <= budget then ()
      else
        let rec pick b' =
          if b' <= b then failwith "Wata_offline: reconstruction failed"
          else if span b (b' + w - 1) > budget then pick (b' - 1)
          else
            let recent = b' :: List.filter (fun x -> x > b' - (w - 1)) state in
            if List.length recent <= n - 1 && solve recent then begin
              boundaries := b' :: !boundaries;
              walk recent
            end
            else pick (b' - 1)
        in
        pick t
    in
    walk [];
    let boundaries = List.rev !boundaries in
    Some { boundaries; max_size = size_of_schedule ~w ~sizes ~boundaries }
  end

let optimal ~w ~n ~sizes =
  if n < 2 then invalid_arg "Wata_offline.optimal: need n >= 2";
  let t = Array.length sizes in
  if t < w then invalid_arg "Wata_offline.optimal: trace shorter than window";
  let p = prefix sizes in
  let lo = ref (Wata_size.window_max ~w ~sizes) in
  let hi = ref p.(t) in
  let best = ref None in
  (* A single open cluster is always feasible at budget = total volume. *)
  while !lo <= !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    match feasible_with ~w ~n ~sizes ~budget:mid with
    | Some s ->
      best := Some s;
      hi := mid - 1
    | None -> lo := mid + 1
  done;
  match !best with
  | Some s -> s
  | None ->
    (* unreachable: the total-volume budget is feasible *)
    { boundaries = []; max_size = p.(t) }
