open Wave_core

type stats = {
  wata_max_size : int;
  window_max_size : int;
  ratio : float;
  wata_max_length : int;
}

let window_max ~w ~sizes =
  let n = Array.length sizes in
  if n < w then invalid_arg "Wata_size.window_max: trace shorter than window";
  let sum = ref 0 in
  for i = 0 to w - 1 do
    sum := !sum + sizes.(i)
  done;
  let best = ref !sum in
  for i = w to n - 1 do
    sum := !sum + sizes.(i) - sizes.(i - w);
    if !sum > !best then best := !sum
  done;
  !best

let replay ~w ~n ~sizes =
  if n < 2 then invalid_arg "Wata_size.replay: WATA needs n >= 2";
  let total_days = Array.length sizes in
  if total_days < w then invalid_arg "Wata_size.replay: trace shorter than window";
  let size_of day = sizes.(day - 1) in
  (* Start phase: days 1..w-1 over slots 1..n-1, day w in slot n. *)
  let slots = Array.make (n + 1) Dayset.empty (* 1-based *) in
  List.iteri
    (fun i (lo, hi) -> slots.(i + 1) <- Dayset.range lo hi)
    (Split.contiguous ~first_day:1 ~days:(w - 1) ~parts:(n - 1));
  slots.(n) <- Dayset.singleton w;
  let last = ref n in
  let current_size () =
    Array.fold_left
      (fun acc ds -> Dayset.fold (fun d a -> a + size_of d) ds acc)
      0 slots
  in
  let current_length () =
    Array.fold_left (fun acc ds -> acc + Dayset.cardinal ds) 0 slots
  in
  let max_size = ref (current_size ()) in
  let max_length = ref (current_length ()) in
  for day = w + 1 to total_days do
    let expired = day - w in
    let j = ref 0 in
    for i = 1 to n do
      if Dayset.mem expired slots.(i) then j := i
    done;
    if !j = 0 then failwith "Wata_size.replay: expired day not found";
    let others =
      let t = ref 0 in
      for i = 1 to n do
        if i <> !j then t := !t + Dayset.cardinal slots.(i)
      done;
      !t
    in
    if others = w - 1 then begin
      slots.(!j) <- Dayset.singleton day;
      last := !j
    end
    else slots.(!last) <- Dayset.add day slots.(!last);
    let s = current_size () and l = current_length () in
    if s > !max_size then max_size := s;
    if l > !max_length then max_length := l
  done;
  let wmax = window_max ~w ~sizes in
  {
    wata_max_size = !max_size;
    window_max_size = wmax;
    ratio = float_of_int !max_size /. float_of_int wmax;
    wata_max_length = !max_length;
  }
