(** Query/update contention: what concurrency control costs.

    Section 2.1: in-place updating "requires concurrency control to
    prevent queries from reading inconsistent data", while shadow
    updating lets queries run against the old index during the whole
    update and swap atomically.  This module quantifies that: it runs a
    scheme day by day, takes each day's measured maintenance busy time,
    scatters query arrivals across the day, and computes how long
    queries block when the updated constituent is locked (in-place)
    versus not at all (shadowing).

    Locking model: in-place maintenance holds an exclusive lock on the
    constituent(s) it mutates for the whole maintenance interval at the
    start of the day; a probe or scan needs read access to every
    constituent, so any query arriving inside the interval waits for
    its end.  Shadow techniques only lock for the O(1) swap. *)

open Wave_core

type report = {
  technique : Env.technique;
  avg_wait_seconds : float;  (** mean query wait *)
  p95_wait_seconds : float;
  blocked_fraction : float;  (** queries that waited at all *)
  avg_maintenance_seconds : float;  (** mean daily busy interval *)
}

val measure :
  ?seed:int ->
  ?day_seconds:float ->
  scheme:Scheme.kind ->
  technique:Env.technique ->
  store:Env.day_store ->
  w:int ->
  n:int ->
  days:int ->
  queries_per_day:int ->
  unit ->
  report
(** Deterministic in [seed]; [day_seconds] defaults to 86,400. *)

val compare_table :
  ?day_seconds:float ->
  scheme:Scheme.kind ->
  store:Env.day_store ->
  w:int ->
  n:int ->
  days:int ->
  queries_per_day:int ->
  unit ->
  string
(** Render the in-place vs simple-shadow vs packed-shadow comparison.
    Pick [day_seconds] so the lock interval is a realistic share of the
    day — the paper's SCAM holds Add = 3341 s against an 86,400 s day,
    about 4%%. *)
