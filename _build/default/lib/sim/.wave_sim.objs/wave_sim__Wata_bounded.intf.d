lib/sim/wata_bounded.mli:
