lib/sim/wata_bounded.ml: Array List Wata_size
