lib/sim/wata_offline.mli:
