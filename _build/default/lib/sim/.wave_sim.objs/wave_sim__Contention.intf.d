lib/sim/contention.mli: Env Scheme Wave_core
