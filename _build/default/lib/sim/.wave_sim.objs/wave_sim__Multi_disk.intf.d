lib/sim/multi_disk.mli: Entry Env Index Wave_core Wave_storage
