lib/sim/wata_size.ml: Array Dayset List Split Wave_core
