lib/sim/runner.mli: Env Scheme Wave_core Wave_storage Wave_workload
