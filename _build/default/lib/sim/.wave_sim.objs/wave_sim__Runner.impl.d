lib/sim/runner.ml: Disk Env Float Frame List Scheme Wave_core Wave_disk Wave_storage Wave_workload
