lib/sim/wata_size.mli:
