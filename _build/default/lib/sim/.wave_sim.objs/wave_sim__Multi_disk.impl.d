lib/sim/multi_disk.ml: Array Dayset Disk Env Float Index List Printf Split Wave_core Wave_disk Wave_storage Wave_util
