lib/sim/contention.ml: Array Env List Printf Scheme Wave_core Wave_disk Wave_util
