lib/sim/wata_offline.ml: Array Hashtbl List Wata_size
