(** Offline-optimal WATA scheduling for the index-size measure.

    Section 3.3 notes that building a size-optimal WATA index requires
    "complete information of data sizes of all future days", and cites
    Kleinberg et al. [KMRV97] for an optimal offline algorithm.  This
    module computes that offline optimum from a full volume trace, so
    Theorem 3's competitive ratio can be evaluated against the true
    adversary rather than the weaker [window_max] lower bound.

    Formulation: a WATA schedule partitions the day line into
    consecutive clusters; a cluster stays on disk from its first day
    until its last day leaves the window; at most [n] clusters may be
    alive at once (equivalently, any [w-1] consecutive days contain at
    most [n-1] cluster boundaries).  The storage at day [d] is the
    volume from the start of the oldest live cluster through [d].  We
    minimise the maximum storage by binary-searching the answer; each
    candidate budget is checked by a memoized search whose state is the
    boundary pattern within the last [w-2] days — the only part of the
    past that can constrain future placements. *)

type schedule = {
  boundaries : int list;
      (** cluster-ending days, ascending (the last cluster may still be
          open at trace end) *)
  max_size : int;  (** peak storage of the schedule, volume units *)
}

val optimal : w:int -> n:int -> sizes:int array -> schedule
(** [optimal ~w ~n ~sizes] is a feasible schedule minimising peak
    storage.  Requires [n >= 2] and a trace at least [w] days long. *)

val feasible_with : w:int -> n:int -> sizes:int array -> budget:int -> schedule option
(** Exact feasibility check for a given storage budget, returning a
    witness schedule; exposed for testing the search's monotonicity. *)

val size_of_schedule : w:int -> sizes:int array -> boundaries:int list -> int
(** Independent evaluator: peak storage of an arbitrary boundary list
    (used to validate the optimiser against brute force in tests).
    Raises [Invalid_argument] if the boundary list violates ordering. *)
