(** Size-bounded online WATA (the Kleinberg et al. [KMRV97] variant the
    paper discusses in Section 3.3).

    WATA* is "purely online" and 2-competitive for index size.  KMRV97
    showed that if the algorithm is told [m] — the largest storage any
    window will ever need — ahead of time, a better ratio of
    [n/(n-1)] is achievable: cap every cluster's volume near
    [m/(n-1)], so the expired residue lingering in the oldest cluster
    never exceeds one cluster cap.

    This module implements that policy as a size-only replay (like
    {!Wata_size}): grow the current cluster until its volume would pass
    the cap {e and} a slot is free (some older cluster fully expired),
    then close it and start a new cluster in the freed slot. *)

type stats = {
  max_size : int;  (** peak storage, volume units *)
  window_max_size : int;
  ratio : float;  (** max_size / window_max_size *)
  clusters_opened : int;
}

val replay : w:int -> n:int -> m:int -> sizes:int array -> stats
(** [replay ~w ~n ~m ~sizes] runs the bounded policy with advertised
    maximum window size [m] (callers typically pass
    [Wata_size.window_max]).  Requires [n >= 2], a trace at least [w]
    days long, and [m >= ] every window's volume (the policy still runs
    if [m] is a lie, but the ratio guarantee is void). *)

val guaranteed_ratio : n:int -> float
(** [n /. (n - 1)], the KMRV97 bound — holds up to one day's volume of
    slack when a single day exceeds [m/(n-1)]. *)
