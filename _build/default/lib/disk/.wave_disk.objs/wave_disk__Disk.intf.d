lib/disk/disk.mli: Format
