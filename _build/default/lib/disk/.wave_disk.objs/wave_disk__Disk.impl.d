lib/disk/disk.ml: Format Int List Map
