type params = {
  seek_time : float;
  transfer_rate : float;
  block_size : int;
}

let default_params =
  { seek_time = 0.014; transfer_rate = 10e6; block_size = 4096 }

type extent = { start : int; length : int }

type counters = {
  seeks : int;
  blocks_read : int;
  blocks_written : int;
  elapsed : float;
}

exception Disk_error of string

module Extent_key = struct
  type t = int (* start block; extents never overlap, so start is a key *)

  let compare = Int.compare
end

module Live = Map.Make (Extent_key)

type t = {
  params : params;
  mutable free_list : (int * int) list; (* (start, length), address-sorted *)
  mutable live : int Live.t; (* start -> length *)
  mutable frontier : int;
  mutable live_blocks : int;
  mutable peak_blocks : int;
  mutable seeks : int;
  mutable blocks_read : int;
  mutable blocks_written : int;
  mutable elapsed : float;
  mutable fault_in : int; (* 0 = disarmed; k = fail on the k-th next seek *)
}

let create ?(params = default_params) () =
  if params.seek_time < 0.0 || params.transfer_rate <= 0.0 || params.block_size <= 0
  then raise (Disk_error "invalid parameters");
  {
    params;
    free_list = [];
    live = Live.empty;
    frontier = 0;
    live_blocks = 0;
    peak_blocks = 0;
    seeks = 0;
    blocks_read = 0;
    blocks_written = 0;
    elapsed = 0.0;
    fault_in = 0;
  }

let params t = t.params

let block_seconds t blocks =
  float_of_int (blocks * t.params.block_size) /. t.params.transfer_rate

let charge_seek t =
  if t.fault_in > 0 then begin
    t.fault_in <- t.fault_in - 1;
    if t.fault_in = 0 then raise (Disk_error "injected fault")
  end;
  t.seeks <- t.seeks + 1;
  t.elapsed <- t.elapsed +. t.params.seek_time

let charge_delay t seconds =
  if seconds < 0.0 then raise (Disk_error "negative delay");
  t.elapsed <- t.elapsed +. seconds

let charge_transfer_bytes t bytes =
  if bytes < 0 then raise (Disk_error "negative transfer");
  t.elapsed <- t.elapsed +. (float_of_int bytes /. t.params.transfer_rate)

let note_alloc t blocks =
  t.live_blocks <- t.live_blocks + blocks;
  if t.live_blocks > t.peak_blocks then t.peak_blocks <- t.live_blocks

let alloc t ~blocks =
  if blocks <= 0 then raise (Disk_error "alloc: non-positive size");
  (* First fit over the address-sorted free list. *)
  let rec fit acc = function
    | [] -> None
    | (start, len) :: rest when len >= blocks ->
      let remainder =
        if len = blocks then [] else [ (start + blocks, len - blocks) ]
      in
      Some (start, List.rev_append acc (remainder @ rest))
    | hole :: rest -> fit (hole :: acc) rest
  in
  let start =
    match fit [] t.free_list with
    | Some (start, free_list) ->
      t.free_list <- free_list;
      start
    | None ->
      let start = t.frontier in
      t.frontier <- t.frontier + blocks;
      start
  in
  t.live <- Live.add start blocks t.live;
  note_alloc t blocks;
  { start; length = blocks }

let lookup_live t ext =
  match Live.find_opt ext.start t.live with
  | Some len when len = ext.length -> ()
  | Some _ -> raise (Disk_error "extent shape mismatch (stale handle?)")
  | None -> raise (Disk_error "extent is not live")

let is_live t ext =
  match Live.find_opt ext.start t.live with
  | Some len -> len = ext.length
  | None -> false

(* Insert (start, len) into the address-sorted free list, merging with
   adjacent holes so repeated alloc/free cycles do not fragment forever. *)
let insert_free free_list (start, len) =
  let rec go = function
    | [] -> [ (start, len) ]
    | (s, l) :: rest when s + l = start -> go_merge (s, l + len) rest
    | (s, l) :: rest when start + len = s -> (start, len + l) :: rest
    | (s, l) :: rest when s > start -> (start, len) :: (s, l) :: rest
    | hole :: rest -> hole :: go rest
  and go_merge (s, l) = function
    | (s2, l2) :: rest when s + l = s2 -> (s, l + l2) :: rest
    | rest -> (s, l) :: rest
  in
  go free_list

let free t ext =
  lookup_live t ext;
  t.live <- Live.remove ext.start t.live;
  t.live_blocks <- t.live_blocks - ext.length;
  t.free_list <- insert_free t.free_list (ext.start, ext.length)

let read_blocks t ext ~blocks =
  lookup_live t ext;
  if blocks < 0 || blocks > ext.length then
    raise (Disk_error "read_blocks: out of extent bounds");
  charge_seek t;
  t.blocks_read <- t.blocks_read + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks

let read t ext = read_blocks t ext ~blocks:ext.length

let write_blocks t ext ~blocks =
  lookup_live t ext;
  if blocks < 0 || blocks > ext.length then
    raise (Disk_error "write_blocks: out of extent bounds");
  charge_seek t;
  t.blocks_written <- t.blocks_written + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks

let write t ext = write_blocks t ext ~blocks:ext.length

let sequential_read t exts =
  List.iter (lookup_live t) exts;
  charge_seek t;
  List.iter
    (fun ext ->
      t.blocks_read <- t.blocks_read + ext.length;
      t.elapsed <- t.elapsed +. block_seconds t ext.length)
    exts

let counters t =
  {
    seeks = t.seeks;
    blocks_read = t.blocks_read;
    blocks_written = t.blocks_written;
    elapsed = t.elapsed;
  }

let elapsed t = t.elapsed

let reset_counters t =
  t.seeks <- 0;
  t.blocks_read <- 0;
  t.blocks_written <- 0;
  t.elapsed <- 0.0

let live_blocks t = t.live_blocks
let peak_blocks t = t.peak_blocks
let reset_peak t = t.peak_blocks <- t.live_blocks
let high_water t = t.frontier

let fragmentation t =
  if t.frontier = 0 then 0.0
  else 1.0 -. (float_of_int t.live_blocks /. float_of_int t.frontier)

let pp_counters ppf (c : counters) =
  Format.fprintf ppf
    "seeks=%d read=%d blocks written=%d blocks elapsed=%.4fs" c.seeks
    c.blocks_read c.blocks_written c.elapsed

let set_fault t ~after_seeks =
  if after_seeks < 1 then raise (Disk_error "set_fault: need after_seeks >= 1");
  t.fault_in <- after_seeks

let clear_fault t = t.fault_in <- 0
let fault_armed t = t.fault_in > 0
