type t = Scheme_base.t

let name = "DEL"
let hard_window = true
let min_indexes = 1

let start env =
  let b = Scheme_base.create env in
  let parts = Split.contiguous ~first_day:1 ~days:env.Env.w ~parts:env.Env.n in
  List.iteri
    (fun i (lo, hi) ->
      let days = Dayset.range lo hi in
      let idx = Update.build_days env (Dayset.elements days) in
      Scheme_base.install b (i + 1) idx days)
    parts;
  b.Scheme_base.day <- env.Env.w;
  Scheme_base.mark_visible b;
  b

let transition (b : t) =
  let env = b.Scheme_base.env in
  Scheme_base.begin_transition b;
  let new_day = b.Scheme_base.day + 1 in
  let expired = new_day - env.Env.w in
  let j = Frame.find_slot_with_day b.Scheme_base.frame expired in
  let idx = Frame.slot_index b.Scheme_base.frame j in
  (* DeleteFromIndex(d_{new-W}, I_j) can be prepared before the new data
     arrives (pre-computation); AddToIndex(d_new, I_j) cannot.  Packed
     shadowing fuses both into one smart copy at completion time. *)
  let pending = Update.prepare_replace env idx ~expire:(fun d -> d = expired) in
  Scheme_base.data_arrives b;
  let idx = Update.complete_replace env pending ~add:[ new_day ] in
  let days =
    Dayset.add new_day (Dayset.remove expired (Frame.slot_days b.Scheme_base.frame j))
  in
  Scheme_base.install b j idx days;
  Scheme_base.mark_visible b;
  b.Scheme_base.day <- new_day

let frame (b : t) = b.Scheme_base.frame
let current_day (b : t) = b.Scheme_base.day
let last_mark (b : t) = b.Scheme_base.mark

let base (b : t) = (b : Scheme_base.t)
