open Wave_storage

module Rid_set = Set.Make (Int)

type t = Word of int | And of t list | Or of t list | Diff of t * t

let words q =
  let rec go acc = function
    | Word v -> v :: acc
    | And qs | Or qs -> List.fold_left go acc qs
    | Diff (a, b) -> go (go acc a) b
  in
  List.sort_uniq Int.compare (go [] q)

let eval frame ~t1 ~t2 q =
  (* One probe per distinct value, shared across the expression. *)
  let cache = Hashtbl.create 16 in
  let posting v =
    match Hashtbl.find_opt cache v with
    | Some s -> s
    | None ->
      let s =
        List.fold_left
          (fun acc (e : Entry.t) -> Rid_set.add e.Entry.rid acc)
          Rid_set.empty
          (Frame.timed_index_probe frame ~t1 ~t2 ~value:v)
      in
      Hashtbl.add cache v s;
      s
  in
  let rec go = function
    | Word v -> posting v
    | And [] -> invalid_arg "Query.eval: And []"
    | And (q :: qs) -> List.fold_left (fun acc q -> Rid_set.inter acc (go q)) (go q) qs
    | Or qs -> List.fold_left (fun acc q -> Rid_set.union acc (go q)) Rid_set.empty qs
    | Diff (a, b) -> Rid_set.diff (go a) (go b)
  in
  (* Warm the cache in a deterministic order so disk charges do not
     depend on expression shape. *)
  List.iter (fun v -> ignore (posting v)) (words q);
  go q

let eval_window s q =
  let d = Scheme.current_day s in
  let w = (Scheme.env s).Env.w in
  eval (Scheme.frame s) ~t1:(d - w + 1) ~t2:d q

let rec pp ppf = function
  | Word v -> Format.fprintf ppf "w%d" v
  | And qs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND ")
         pp)
      qs
  | Or qs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " OR ")
         pp)
      qs
  | Diff (a, b) -> Format.fprintf ppf "(%a \\ %a)" pp a pp b
