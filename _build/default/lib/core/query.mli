(** Boolean queries over a wave index.

    Search engines front their indexes with boolean retrieval — the
    paper's WSE case study measures two-word (conjunctive) AltaVista
    queries.  This module evaluates a boolean combination of search
    values over a day range by issuing one [TimedIndexProbe] per
    distinct value and combining the resulting record-id sets; the
    simulated disk is charged for exactly those probes. *)


module Rid_set : Set.S with type elt = int

type t =
  | Word of int  (** records posting this search value in range *)
  | And of t list  (** intersection; [And []] is invalid *)
  | Or of t list  (** union; [Or []] is the empty set *)
  | Diff of t * t  (** [Diff (a, b)]: results of [a] without those of [b] *)

val words : t -> int list
(** Distinct search values mentioned, ascending. *)

val eval : Frame.t -> t1:int -> t2:int -> t -> Rid_set.t
(** Record ids matching the query among entries timestamped in
    [\[t1, t2\]].  Each distinct value is probed once (probes are
    memoised across the whole query).  Raises [Invalid_argument] on
    [And \[\]]. *)

val eval_window : Scheme.t -> t -> Rid_set.t
(** Evaluate over the scheme's current required window. *)

val pp : Format.formatter -> t -> unit
(** e.g. [(w3 AND (w1 OR w2)) \ w9]. *)
