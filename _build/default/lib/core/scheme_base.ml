type t = {
  env : Env.t;
  frame : Frame.t;
  mutable day : int;
  mutable mark : float;
  mutable arrived : float;
  mutable started : float;
}

let create env =
  {
    env;
    frame = Frame.create env;
    day = env.Env.w - 1;
    mark = 0.0;
    arrived = 0.0;
    started = 0.0;
  }

let mark_visible t = t.mark <- Wave_disk.Disk.elapsed t.env.Env.disk

let install t j idx days = Frame.set_slot t.frame j idx days

let days_list ds = Dayset.elements ds

let begin_transition t =
  let now = Wave_disk.Disk.elapsed t.env.Env.disk in
  t.started <- now;
  t.arrived <- now

let data_arrives t = t.arrived <- Wave_disk.Disk.elapsed t.env.Env.disk

let arrival t = t.arrived
let transition_started t = t.started
