type t = { base : Scheme_base.t; mutable last : int }

let name = "WATA*"
let hard_window = false
let min_indexes = 2

let length_bound ~w ~n = w + ((w - 1 + (n - 2)) / (n - 1)) - 1

let start env =
  if env.Env.n < 2 then invalid_arg "Wata.start: WATA needs n >= 2";
  let base = Scheme_base.create env in
  (* Days 1..W-1 over the first n-1 slots, day W alone in slot n. *)
  let parts =
    Split.contiguous ~first_day:1 ~days:(env.Env.w - 1) ~parts:(env.Env.n - 1)
  in
  List.iteri
    (fun i (lo, hi) ->
      let days = Dayset.range lo hi in
      Scheme_base.install base (i + 1)
        (Update.build_days env (Dayset.elements days))
        days)
    parts;
  Scheme_base.install base env.Env.n
    (Update.build_days env [ env.Env.w ])
    (Dayset.singleton env.Env.w);
  base.Scheme_base.day <- env.Env.w;
  Scheme_base.mark_visible base;
  { base; last = env.Env.n }

(* The slots other than [j] jointly cover exactly the W-1 most recent
   required days iff their cardinalities sum to W-1 (clusters are
   disjoint and, by construction, everything outside slot [j] is alive). *)
let others_cover_rest frame ~j ~w =
  let total = ref 0 in
  for i = 1 to Frame.n frame do
    if i <> j then total := !total + Dayset.cardinal (Frame.slot_days frame i)
  done;
  !total = w - 1

let transition t =
  let env = t.base.Scheme_base.env in
  Scheme_base.begin_transition t.base;
  let frame = t.base.Scheme_base.frame in
  let new_day = t.base.Scheme_base.day + 1 in
  let expired = new_day - env.Env.w in
  let j = Frame.find_slot_with_day frame expired in
  if others_cover_rest frame ~j ~w:env.Env.w then begin
    (* ThrowAway: every day in slot j has expired. *)
    Scheme_base.data_arrives t.base;
    (* Build the replacement before dropping the retired constituent so
       a mid-build failure cannot lose the old (still-valid) wave. *)
    let fresh = Update.build_days env [ new_day ] in
    Wave_storage.Index.drop (Frame.slot_index frame j);
    Scheme_base.install t.base j fresh (Dayset.singleton new_day);
    t.last <- j
  end
  else begin
    (* Wait: append the new day to the last-modified slot.  Under
       simple shadowing the copy of I_last is pre-computation. *)
    let idx = Frame.slot_index frame t.last in
    let pending = Update.prepare_add env idx in
    Scheme_base.data_arrives t.base;
    let idx = Update.complete_replace env pending ~add:[ new_day ] in
    Scheme_base.install t.base t.last idx
      (Dayset.add new_day (Frame.slot_days frame t.last))
  end;
  Scheme_base.mark_visible t.base;
  t.base.Scheme_base.day <- new_day

let frame t = t.base.Scheme_base.frame
let current_day t = t.base.Scheme_base.day
let last_mark t = t.base.Scheme_base.mark
let last_slot t = t.last

let base t = t.base
