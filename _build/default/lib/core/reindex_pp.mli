(** REINDEX++ (Section 4.2, Figure 15): reindexing with a ladder of
    temporaries.

    A family T_0..T_c of temporary indexes holds every suffix of the
    next-to-expire cluster, prepared ahead of time, so that when a new
    day arrives only one [AddToIndex] separates its data from being
    queryable — the rest of the daily work (topping up the next rung
    of the ladder, or re-initialising the ladder at cluster boundaries)
    happens after the swap, as pre-computation for future days.  Same
    total work as REINDEX+, far lower transition time, highest space
    use.  Hard windows. *)

type t

val name : string
val hard_window : bool
val min_indexes : int
val start : Env.t -> t
val transition : t -> unit
val frame : t -> Frame.t
val current_day : t -> int
val last_mark : t -> float

val temps_days : t -> Dayset.t list
(** Time-sets of the live temporaries T_0 .. T_TempUsed (ascending
    rung), for space accounting and the Table 6 trace. *)

val temp_indexes : t -> Wave_storage.Index.t list
(** The live temporaries T_0 .. T_TempUsed, for space accounting. *)

val base : t -> Scheme_base.t
(** Shared scheme state (clock stamps), for the uniform driver. *)
