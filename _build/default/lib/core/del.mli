(** DEL (Section 3.1, Figure 12): hard windows by incremental deletion.

    Days [1..W] are split into [n] contiguous clusters.  Each day, the
    expired day is deleted from the constituent that holds it and the
    new day is inserted into the same constituent.  The cheapest scheme
    per transition under in-place updating, at the price of deletion
    code and (unless packed shadowing is used) unpacked indexes. *)

type t

val name : string
val hard_window : bool
val min_indexes : int

val start : Env.t -> t
(** Builds the initial wave over days [1..W] (the paper's Start). *)

val transition : t -> unit
(** Absorb the next day's data and expire the oldest. *)

val frame : t -> Frame.t
val current_day : t -> int

val last_mark : t -> float
(** Model-clock instant during the last transition at which the new
    day's data became queryable. *)

val base : t -> Scheme_base.t
(** Shared scheme state (clock stamps), for the uniform driver. *)
