(** REINDEX+ (Section 4.1, Figure 14): reindexing with one temporary.

    A temporary index [Temp] accumulates the new days of the current
    replacement cycle so they are indexed once instead of being rebuilt
    on every subsequent day of the cycle; each day the constituent is
    formed by copying [Temp] and incrementally adding the still-alive
    old days.  Roughly halves REINDEX's daily indexing work at the cost
    of the extra temporary's space.  Hard windows. *)

type t

val name : string
val hard_window : bool
val min_indexes : int
val start : Env.t -> t
val transition : t -> unit
val frame : t -> Frame.t
val current_day : t -> int
val last_mark : t -> float

val temp_days : t -> Dayset.t
(** Days currently held by the temporary index (empty when [Temp] is
    φ); exposed for space accounting and the Table 5 trace. *)

val temp_index : t -> Wave_storage.Index.t option
(** The live temporary index, for space accounting. *)

val base : t -> Scheme_base.t
(** Shared scheme state (clock stamps), for the uniform driver. *)
