open Wave_storage

type t = {
  base : Scheme_base.t;
  mutable temps : Index.t array; (* T_0 .. T_c; rungs above temp_used are consumed *)
  mutable tdays : Dayset.t array;
  mutable temp_used : int;
  mutable days_to_add : Dayset.t;
}

let name = "REINDEX++"
let hard_window = true
let min_indexes = 1

(* Prepare the ladder for cluster-minus-first-day [ds]: T_1 holds the
   cluster's largest day, each higher rung adds the next older day, so
   T_m holds the m most recent days of [ds].  T_0 starts empty and will
   accumulate the new days of the coming cycle. *)
let initialize t ds =
  let env = t.base.Scheme_base.env in
  let c = Dayset.cardinal ds in
  let temps = Array.make (c + 1) (Index.create_empty env.Env.disk env.Env.icfg) in
  let tdays = Array.make (c + 1) Dayset.empty in
  (if c > 0 then
     let desc = List.rev (Dayset.elements ds) in
     match desc with
     | [] -> assert false
     | k :: rest ->
       temps.(1) <- Update.build_days env [ k ];
       tdays.(1) <- Dayset.singleton k;
       List.iteri
         (fun i day ->
           let m = i + 2 in
           let next = Update.copy env temps.(m - 1) in
           temps.(m) <- Update.add_days_fresh env next [ day ];
           tdays.(m) <- Dayset.add day tdays.(m - 1))
         rest);
  t.temps <- temps;
  t.tdays <- tdays;
  t.temp_used <- c;
  t.days_to_add <- Dayset.empty

let start env =
  let base = Scheme_base.create env in
  let parts = Split.contiguous ~first_day:1 ~days:env.Env.w ~parts:env.Env.n in
  List.iteri
    (fun i (lo, hi) ->
      let days = Dayset.range lo hi in
      Scheme_base.install base (i + 1)
        (Update.build_days env (Dayset.elements days))
        days)
    parts;
  base.Scheme_base.day <- env.Env.w;
  Scheme_base.mark_visible base;
  let t =
    {
      base;
      temps = [||];
      tdays = [||];
      temp_used = 0;
      days_to_add = Dayset.empty;
    }
  in
  initialize t (Dayset.remove 1 (Frame.slot_days base.Scheme_base.frame 1));
  t

let transition t =
  let env = t.base.Scheme_base.env in
  Scheme_base.begin_transition t.base;
  let frame = t.base.Scheme_base.frame in
  let new_day = t.base.Scheme_base.day + 1 in
  let expired = new_day - env.Env.w in
  let j = Frame.find_slot_with_day frame expired in
  let old = Frame.slot_index frame j in
  if t.temp_used = 0 then begin
    (* Cluster boundary: T_0 (all new days of the finished cycle) plus
       today's data becomes the new constituent; then rebuild the
       ladder for the next cluster. *)
    let ij = Update.add_days_fresh env t.temps.(0) [ new_day ] in
    let ij_days = Dayset.add new_day t.tdays.(0) in
    Scheme_base.install t.base j ij ij_days;
    Index.drop old;
    Scheme_base.mark_visible t.base;
    let j' = Frame.find_slot_with_day frame (expired + 1) in
    initialize t (Dayset.remove (expired + 1) (Frame.slot_days frame j'))
  end
  else begin
    t.days_to_add <- Dayset.add new_day t.days_to_add;
    let tu = t.temp_used in
    let ij = Update.add_days_fresh env t.temps.(tu) [ new_day ] in
    let ij_days = Dayset.add new_day t.tdays.(tu) in
    Scheme_base.install t.base j ij ij_days;
    Index.drop old;
    Scheme_base.mark_visible t.base;
    (* Pre-computation for tomorrow: top up the next rung with every
       new day seen this cycle. *)
    t.temp_used <- tu - 1;
    let tu = t.temp_used in
    t.temps.(tu) <- Update.add_days_fresh env t.temps.(tu) (Dayset.elements t.days_to_add);
    t.tdays.(tu) <- Dayset.union t.tdays.(tu) t.days_to_add
  end;
  t.base.Scheme_base.day <- new_day

let frame t = t.base.Scheme_base.frame
let current_day t = t.base.Scheme_base.day
let last_mark t = t.base.Scheme_base.mark

let temps_days t = Array.to_list (Array.sub t.tdays 0 (t.temp_used + 1))

let temp_indexes t = Array.to_list (Array.sub t.temps 0 (t.temp_used + 1))

let base t = t.base
