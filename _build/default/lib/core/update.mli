(** Constituent-index update operations under the three techniques.

    These are the paper's [BuildIndex], [AddToIndex] and
    [DeleteFromIndex] (Section 2.2), parameterised by the update
    technique of Section 2.1.  Shadow techniques replace the index, so
    every mutator returns the index to install in the wave; the old
    one has already been dropped (its space reclaimed). *)

open Wave_storage

exception Deletes_not_supported of string
(** Raised when a scheme needs incremental [DeleteFromIndex] but the
    environment declares the index package cannot delete
    ([Env.allow_deletes = false]) and the technique is not packed
    shadowing.  Models the paper's WAIS/SMART legacy constraint. *)

val build_days : Env.t -> int list -> Index.t
(** [BuildIndex (Days)]: a packed index over the given days' batches,
    fetched from the store. *)

val add_days : Env.t -> Index.t -> int list -> Index.t
(** [AddToIndex (Days, I)].  In-place: incremental CONTIGUOUS inserts,
    result unpacked.  Simple shadow: copy, insert into the copy, swap.
    Packed shadow: smart-copy into a fresh packed index. *)

val delete_days : Env.t -> Index.t -> (int -> bool) -> Index.t
(** [DeleteFromIndex (Days, I)] for all days satisfying the predicate. *)

val replace_days : Env.t -> Index.t -> expire:(int -> bool) -> add:int list -> Index.t
(** Delete + add in one maintenance step (what DEL does daily).  Under
    packed shadowing both ride a single smart copy, which is where that
    technique's saving comes from. *)

val copy : Env.t -> Index.t -> Index.t
(** Plain duplication (the paper's [CP]); used for [I_j <- Temp] steps
    where the temporary must survive. *)

val add_days_fresh : Env.t -> Index.t -> int list -> Index.t
(** Like {!add_days} but for an index that is not yet visible to
    queries (a temporary or a replacement under construction): no
    shadow copy is ever needed, so [In_place] and [Simple_shadow]
    coincide; [Packed_shadow] still packs, since that technique's
    point is that every produced index is packed. *)

type pending
(** A replacement prepared by {!prepare_replace}: all the daily
    maintenance work that does not need the new day's data (shadow
    copy, expiry deletion).  Completing it with the new day is the
    paper's Transition; preparing it is Pre-computation. *)

val prepare_replace : Env.t -> Index.t -> expire:(int -> bool) -> pending
(** Prepare a delete+add maintenance step.  Raises
    {!Deletes_not_supported} under the legacy constraint (see
    {!Env.t.allow_deletes}). *)

val prepare_add : Env.t -> Index.t -> pending
(** Like {!prepare_replace} with no expiry — pure insertion (what WATA
    and RATA do), legal even without delete support. *)

val complete_replace : Env.t -> pending -> add:int list -> Index.t
(** [complete_replace env p ~add] finishes the maintenance step begun
    by {!prepare_replace} once the new data exists, returning the index
    to install.  The old index has been dropped where the technique
    replaces it. *)
