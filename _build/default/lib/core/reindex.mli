(** REINDEX (Section 3.2, Figure 13): hard windows by rebuilding.

    Each day, the constituent holding the expired day is rebuilt from
    scratch over its cluster with the expired day swapped for the new
    one.  No deletion code, always-packed constituents, but W/n days
    are re-indexed every day. *)

type t

val name : string
val hard_window : bool
val min_indexes : int
val start : Env.t -> t
val transition : t -> unit
val frame : t -> Frame.t
val current_day : t -> int
val last_mark : t -> float

val base : t -> Scheme_base.t
(** Shared scheme state (clock stamps), for the uniform driver. *)
