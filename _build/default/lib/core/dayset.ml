include Set.Make (Int)

let range lo hi =
  let rec go acc d = if d > hi then acc else go (add d acc) (d + 1) in
  go empty lo

let of_int_list = of_list

let is_contiguous t =
  is_empty t || cardinal t = max_elt t - min_elt t + 1

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun d ->
      if !first then first := false else Format.fprintf ppf ", ";
      Format.fprintf ppf "d%d" d)
    t;
  Format.fprintf ppf "}"

let to_string t = Format.asprintf "%a" pp t
