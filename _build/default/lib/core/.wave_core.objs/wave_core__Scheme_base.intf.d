lib/core/scheme_base.mli: Dayset Env Frame Wave_storage
