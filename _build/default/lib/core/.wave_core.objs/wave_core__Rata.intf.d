lib/core/rata.mli: Dayset Env Frame Scheme_base Wave_storage
