lib/core/wata.ml: Dayset Env Frame List Scheme_base Split Update Wave_storage
