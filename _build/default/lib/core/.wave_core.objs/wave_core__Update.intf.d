lib/core/update.mli: Env Index Wave_storage
