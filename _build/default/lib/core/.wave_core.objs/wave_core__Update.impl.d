lib/core/update.ml: Env Index List Printf Wave_storage
