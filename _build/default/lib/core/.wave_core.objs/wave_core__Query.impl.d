lib/core/query.ml: Entry Env Format Frame Hashtbl Int List Scheme Set Wave_storage
