lib/core/split.mli:
