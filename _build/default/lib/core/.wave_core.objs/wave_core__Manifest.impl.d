lib/core/manifest.ml: Buffer Dayset Env Frame List Option Printf Scheme String Update
