lib/core/manifest.mli: Dayset Env Frame Scheme
