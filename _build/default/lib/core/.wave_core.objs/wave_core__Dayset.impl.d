lib/core/dayset.ml: Format Int Set
