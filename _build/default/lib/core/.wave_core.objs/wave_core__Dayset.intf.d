lib/core/dayset.mli: Format Set
