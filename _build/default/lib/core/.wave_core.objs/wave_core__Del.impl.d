lib/core/del.ml: Dayset Env Frame List Scheme_base Split Update
