lib/core/env.ml: Disk Entry Index Wave_disk Wave_storage
