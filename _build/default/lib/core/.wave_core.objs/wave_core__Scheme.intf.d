lib/core/scheme.mli: Dayset Env Frame Wave_storage
