lib/core/reindex_plus.ml: Dayset Env Frame Index List Scheme_base Split Update Wave_storage
