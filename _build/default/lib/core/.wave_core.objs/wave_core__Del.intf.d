lib/core/del.mli: Env Frame Scheme_base
