lib/core/reindex.mli: Env Frame Scheme_base
