lib/core/scheme.ml: Dayset Del Env Frame List Option Printf Rata Reindex Reindex_plus Reindex_pp Scheme_base String Wata Wave_disk Wave_storage
