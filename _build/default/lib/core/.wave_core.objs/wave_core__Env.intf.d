lib/core/env.mli: Disk Entry Index Wave_disk Wave_storage
