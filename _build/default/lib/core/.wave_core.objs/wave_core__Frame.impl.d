lib/core/frame.ml: Array Dayset Entry Env Format Index List Printf Wave_storage
