lib/core/reindex_pp.ml: Array Dayset Env Frame Index List Scheme_base Split Update Wave_storage
