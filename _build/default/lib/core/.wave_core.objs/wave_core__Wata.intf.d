lib/core/wata.mli: Env Frame Scheme_base
