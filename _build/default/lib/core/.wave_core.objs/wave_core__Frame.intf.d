lib/core/frame.mli: Dayset Entry Env Format Index Wave_storage
