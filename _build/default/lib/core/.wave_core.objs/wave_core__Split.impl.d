lib/core/split.ml: List
