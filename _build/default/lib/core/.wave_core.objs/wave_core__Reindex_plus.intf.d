lib/core/reindex_plus.mli: Dayset Env Frame Scheme_base Wave_storage
