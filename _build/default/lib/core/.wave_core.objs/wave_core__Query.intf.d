lib/core/query.mli: Format Frame Scheme Set
