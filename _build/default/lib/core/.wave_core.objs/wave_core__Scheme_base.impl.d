lib/core/scheme_base.ml: Dayset Env Frame Wave_disk
