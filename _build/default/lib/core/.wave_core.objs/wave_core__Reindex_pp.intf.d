lib/core/reindex_pp.mli: Dayset Env Frame Scheme_base Wave_storage
