let sizes ~days ~parts =
  if parts <= 0 then invalid_arg "Split.sizes: parts must be positive";
  if days < parts then invalid_arg "Split.sizes: need parts <= days";
  let base = days / parts and extra = days mod parts in
  List.init parts (fun i -> if i < extra then base + 1 else base)

let contiguous ~first_day ~days ~parts =
  let szs = sizes ~days ~parts in
  let _, ranges =
    List.fold_left
      (fun (lo, acc) sz -> (lo + sz, (lo, lo + sz - 1) :: acc))
      (first_day, []) szs
  in
  List.rev ranges
