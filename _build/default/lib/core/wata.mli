(** WATA* (Section 3.3, Figure 16): soft windows, "wait and throw away".

    Days [1..W-1] are split across the first [n-1] constituents; the
    last holds day [W] and keeps absorbing new days.  When every other
    constituent jointly covers exactly the required [W-1] older days,
    the constituent holding only expired days is thrown away wholesale
    (constant-time) and restarted from the new day.  No deletion code,
    minimal daily work, but expired days linger: the wave's length can
    reach [W + ceil((W-1)/(n-1)) - 1] — optimal among WATA algorithms
    (Theorems 1-2) — and its size is 2-competitive with the offline
    optimum under non-uniform day sizes (Theorem 3).

    Requires [n >= 2]: with one constituent nothing ever fully expires
    and the index would grow forever. *)

type t

val name : string
val hard_window : bool
val min_indexes : int

val start : Env.t -> t
(** Raises [Invalid_argument] when [env.n < 2]. *)

val transition : t -> unit
val frame : t -> Frame.t
val current_day : t -> int
val last_mark : t -> float

val last_slot : t -> int
(** The constituent currently absorbing new days. *)

val length_bound : w:int -> n:int -> int
(** Theorem 2's maximum wave length: [w + ceil((w-1)/(n-1)) - 1]. *)

val base : t -> Scheme_base.t
(** Shared scheme state (clock stamps), for the uniform driver. *)
