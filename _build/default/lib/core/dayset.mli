(** Time-sets: the set of days covered by a constituent index.

    The paper represents the days indexed by each constituent as a set
    of integers (Section 2.2).  This is [Set.Make (Int)] plus the
    helpers the maintenance algorithms need. *)

include Set.S with type elt = int

val range : int -> int -> t
(** [range lo hi] is [{lo, lo+1, ..., hi}]; empty when [lo > hi]. *)

val of_int_list : int list -> t

val is_contiguous : t -> bool
(** Whether the set is a run of consecutive integers (or empty).  Every
    cluster the paper's algorithms form is contiguous. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{d2, d3, d4}], matching the paper's tables. *)

val to_string : t -> string
