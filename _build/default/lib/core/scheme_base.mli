(** State shared by every maintenance scheme: the frame, the current
    day, and the "new data visible" clock mark used to measure
    transition time (how soon after a day's data arrives it is
    queryable — Section 5's Transition Time metric). *)

type t = {
  env : Env.t;
  frame : Frame.t;
  mutable day : int;  (** most recent day absorbed into the wave *)
  mutable mark : float;  (** disk clock when that day became queryable *)
  mutable arrived : float;  (** disk clock when that day's data arrived *)
  mutable started : float;  (** disk clock when its maintenance began *)
}

val create : Env.t -> t
(** Fresh base with an empty frame, positioned before day [w]'s start. *)

val mark_visible : t -> unit
(** Record the current model clock as the moment the newest day became
    visible to queries.  Schemes call this right after installing the
    constituent holding the new day. *)

val install : t -> int -> Wave_storage.Index.t -> Dayset.t -> unit
(** [install t j idx days] sets slot [j] of the frame. *)

val days_list : Dayset.t -> int list
(** Ascending day list, for feeding [Update] functions. *)

val begin_transition : t -> unit
(** Stamp the start of a daily maintenance step; also (until
    {!data_arrives} is called) the default arrival instant. *)

val data_arrives : t -> unit
(** Stamp the instant the new day's data becomes available — work done
    before this is pre-computation, work between this and
    {!mark_visible} is the paper's Transition Time. *)

val arrival : t -> float
val transition_started : t -> float
