(** Initial partitioning of days across constituent indexes.

    The Start phase of every algorithm in Appendix A splits a run of
    days into [parts] contiguous clusters, giving the first
    [days mod parts] clusters one extra day (so cluster sizes are
    either ⌈days/parts⌉ or ⌊days/parts⌋). *)

val contiguous : first_day:int -> days:int -> parts:int -> (int * int) list
(** [contiguous ~first_day ~days ~parts] returns [parts] inclusive
    [(lo, hi)] ranges covering [first_day .. first_day + days - 1] in
    order.  Requires [0 < parts <= days]. *)

val sizes : days:int -> parts:int -> int list
(** Just the cluster cardinalities. *)
