open Wave_storage

type t = {
  base : Scheme_base.t;
  mutable temp : Index.t option; (* None = φ *)
  mutable tdays : Dayset.t;
  mutable days_to_add : Dayset.t;
}

let name = "REINDEX+"
let hard_window = true
let min_indexes = 1

let start env =
  let base = Scheme_base.create env in
  let parts = Split.contiguous ~first_day:1 ~days:env.Env.w ~parts:env.Env.n in
  List.iteri
    (fun i (lo, hi) ->
      let days = Dayset.range lo hi in
      Scheme_base.install base (i + 1)
        (Update.build_days env (Dayset.elements days))
        days)
    parts;
  base.Scheme_base.day <- env.Env.w;
  Scheme_base.mark_visible base;
  { base; temp = None; tdays = Dayset.empty; days_to_add = Dayset.empty }

let transition t =
  let env = t.base.Scheme_base.env in
  Scheme_base.begin_transition t.base;
  let frame = t.base.Scheme_base.frame in
  let new_day = t.base.Scheme_base.day + 1 in
  let expired = new_day - env.Env.w in
  let j = Frame.find_slot_with_day frame expired in
  let new_slot_days =
    Dayset.add new_day (Dayset.remove expired (Frame.slot_days frame j))
  in
  let old = Frame.slot_index frame j in
  (match (t.temp, Dayset.is_empty t.days_to_add) with
  | None, _ ->
    (* Start of a cycle: the cluster's surviving old days become
       DaysToAdd; Temp restarts from the new day alone. *)
    t.days_to_add <- Dayset.remove expired (Frame.slot_days frame j);
    let temp = Update.build_days env [ new_day ] in
    if Dayset.is_empty t.days_to_add then begin
      (* Singleton cluster: the cycle begins and completes at once. *)
      Scheme_base.install t.base j temp new_slot_days;
      Index.drop old
    end
    else begin
      let ij = Update.copy env temp in
      let ij = Update.add_days_fresh env ij (Dayset.elements t.days_to_add) in
      Scheme_base.install t.base j ij new_slot_days;
      Index.drop old;
      t.temp <- Some temp;
      t.tdays <- Dayset.singleton new_day
    end
  | Some temp, true ->
    (* Cycle completion: Temp itself (plus the new day) becomes I_j. *)
    let ij = Update.add_days_fresh env temp [ new_day ] in
    Scheme_base.install t.base j ij new_slot_days;
    Index.drop old;
    t.temp <- None;
    t.tdays <- Dayset.empty
  | Some temp, false ->
    (* Mid-cycle: extend Temp, copy it, add the surviving old days. *)
    let temp = Update.add_days_fresh env temp [ new_day ] in
    t.temp <- Some temp;
    t.tdays <- Dayset.add new_day t.tdays;
    let ij = Update.copy env temp in
    let ij = Update.add_days_fresh env ij (Dayset.elements t.days_to_add) in
    Scheme_base.install t.base j ij new_slot_days;
    Index.drop old);
  Scheme_base.mark_visible t.base;
  t.days_to_add <- Dayset.remove (new_day - env.Env.w + 1) t.days_to_add;
  t.base.Scheme_base.day <- new_day

let frame t = t.base.Scheme_base.frame
let current_day t = t.base.Scheme_base.day
let last_mark t = t.base.Scheme_base.mark
let temp_days t = t.tdays

let temp_index t = t.temp

let base t = t.base
