(* Tests for the text-indexing layer (tokenizer, vocabulary, corpus
   bridge), the boolean query engine, and the contention model. *)

open Wave_core
open Wave_text

(* --- Tokenizer ----------------------------------------------------- *)

let words text = List.map (fun (t : Tokenizer.token) -> t.Tokenizer.word) (Tokenizer.tokens text)

let test_tokenizer_basic () =
  Alcotest.(check (list string)) "lowercase words"
    [ "hello"; "world" ]
    (words "Hello, WORLD!")

let test_tokenizer_offsets () =
  let toks = Tokenizer.tokens "foo bar" in
  Alcotest.(check (list (pair string int)))
    "offsets"
    [ ("foo", 0); ("bar", 4) ]
    (List.map (fun (t : Tokenizer.token) -> (t.Tokenizer.word, t.Tokenizer.offset)) toks)

let test_tokenizer_stopwords () =
  Alcotest.(check (list string)) "stopwords removed"
    [ "quick"; "fox" ]
    (words "the quick and the fox");
  Alcotest.(check bool) "stopwords kept when off" true
    (List.mem "the" (List.map (fun (t : Tokenizer.token) -> t.Tokenizer.word)
       (Tokenizer.tokens ~stopwords:false "the fox")))

let test_tokenizer_min_length () =
  Alcotest.(check (list string)) "short dropped" [ "ab"; "abc" ]
    (words "x ab abc");
  Alcotest.(check (list string)) "min 3" [ "abc" ]
    (List.map (fun (t : Tokenizer.token) -> t.Tokenizer.word)
       (Tokenizer.tokens ~min_length:3 "x ab abc"))

let test_tokenizer_apostrophes () =
  Alcotest.(check (list string)) "inner kept, edges trimmed"
    [ "don't"; "rock" ]
    (words "don't 'rock'")

let test_tokenizer_digits () =
  Alcotest.(check (list string)) "alphanumerics" [ "tpc"; "d99" ] (words "TPC! d99")

let test_distinct_words () =
  Alcotest.(check (list string)) "sorted distinct" [ "bar"; "foo" ]
    (Tokenizer.distinct_words "foo bar foo BAR")

(* --- Vocab --------------------------------------------------------- *)

let test_vocab_roundtrip () =
  let v = Vocab.create () in
  let a = Vocab.intern v "alpha" in
  let b = Vocab.intern v "beta" in
  Alcotest.(check int) "stable" a (Vocab.intern v "alpha");
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check string) "reverse" "beta" (Vocab.word_of v b);
  Alcotest.(check int) "size" 2 (Vocab.size v);
  Alcotest.(check (option int)) "find" (Some a) (Vocab.find v "alpha");
  Alcotest.(check (option int)) "miss" None (Vocab.find v "gamma")

let test_vocab_growth () =
  let v = Vocab.create () in
  for i = 1 to 5000 do
    ignore (Vocab.intern v (Printf.sprintf "w%d" i))
  done;
  Alcotest.(check int) "size 5000" 5000 (Vocab.size v);
  Alcotest.(check string) "deep reverse" "w3777" (Vocab.word_of v 3777);
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      ignore (Vocab.word_of v 6000))

(* --- Corpus bridge -------------------------------------------------- *)

let test_index_documents () =
  let v = Vocab.create () in
  let batch =
    Corpus.index_documents v ~day:3
      [
        { Corpus.rid = 1; text = "copyright notice inside" };
        { Corpus.rid = 2; text = "notice notice notice" };
      ]
  in
  (* doc 1: 3 distinct words; doc 2: 1 distinct word *)
  Alcotest.(check int) "postings" 4 (Wave_storage.Entry.batch_size batch);
  Array.iter
    (fun (p : Wave_storage.Entry.posting) ->
      if p.Wave_storage.Entry.entry.Wave_storage.Entry.day <> 3 then
        Alcotest.fail "bad day")
    batch.Wave_storage.Entry.postings;
  (* the info field carries the first byte offset *)
  let notice_id = Option.get (Vocab.find v "notice") in
  let offsets =
    Array.to_list batch.Wave_storage.Entry.postings
    |> List.filter_map (fun (p : Wave_storage.Entry.posting) ->
           if p.Wave_storage.Entry.value = notice_id then
             Some
               ( p.Wave_storage.Entry.entry.Wave_storage.Entry.rid,
                 p.Wave_storage.Entry.entry.Wave_storage.Entry.info )
           else None)
  in
  Alcotest.(check (list (pair int int))) "first offsets" [ (1, 10); (2, 0) ] offsets

let test_article_generator () =
  let g = Corpus.generator ~seed:5 ~vocab_size:500 () in
  let a1 = Corpus.article g ~words:50 in
  Alcotest.(check bool) "nonempty" true (String.length a1 > 100);
  let toks = Tokenizer.tokens ~stopwords:false a1 in
  Alcotest.(check bool) "tokenises back" true (List.length toks >= 45);
  (* determinism across generators *)
  let g2 = Corpus.generator ~seed:5 ~vocab_size:500 () in
  Alcotest.(check string) "deterministic" a1 (Corpus.article g2 ~words:50);
  (* lexicon words are unique *)
  let lex = List.init 500 (fun i -> Corpus.lexicon_word g (i + 1)) in
  Alcotest.(check int) "unique lexicon" 500 (List.length (List.sort_uniq compare lex))

(* --- Query engine --------------------------------------------------- *)

(* store: day d has records 10d+1 (values {1,2}), 10d+2 (values {2,3}). *)
let qstore day =
  Wave_storage.Entry.batch_create ~day
    [|
      { Wave_storage.Entry.value = 1; entry = { Wave_storage.Entry.rid = (10 * day) + 1; day; info = 0 } };
      { Wave_storage.Entry.value = 2; entry = { Wave_storage.Entry.rid = (10 * day) + 1; day; info = 0 } };
      { Wave_storage.Entry.value = 2; entry = { Wave_storage.Entry.rid = (10 * day) + 2; day; info = 0 } };
      { Wave_storage.Entry.value = 3; entry = { Wave_storage.Entry.rid = (10 * day) + 2; day; info = 0 } };
    |]

let query_frame () =
  let env = Env.create ~store:qstore ~w:4 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  Scheme.advance_to s 8;
  s

let rids set = Query.Rid_set.elements set

let test_query_word () =
  let s = query_frame () in
  Alcotest.(check (list int)) "word 1" [ 51; 61; 71; 81 ]
    (rids (Query.eval_window s (Query.Word 1)))

let test_query_and () =
  let s = query_frame () in
  (* values 1 and 2 co-occur only in the x1 records *)
  Alcotest.(check (list int)) "1 AND 2" [ 51; 61; 71; 81 ]
    (rids (Query.eval_window s (Query.And [ Query.Word 1; Query.Word 2 ])));
  Alcotest.(check (list int)) "1 AND 3 empty" []
    (rids (Query.eval_window s (Query.And [ Query.Word 1; Query.Word 3 ])))

let test_query_or_diff () =
  let s = query_frame () in
  Alcotest.(check int) "1 OR 3 = all" 8
    (List.length (rids (Query.eval_window s (Query.Or [ Query.Word 1; Query.Word 3 ]))));
  Alcotest.(check (list int)) "2 \\ 1 = the x2 records" [ 52; 62; 72; 82 ]
    (rids (Query.eval_window s (Query.Diff (Query.Word 2, Query.Word 1))));
  Alcotest.(check (list int)) "Or [] empty" []
    (rids (Query.eval_window s (Query.Or [])))

let test_query_range_restricted () =
  let s = query_frame () in
  let r = Query.eval (Scheme.frame s) ~t1:7 ~t2:8 (Query.Word 2) in
  Alcotest.(check (list int)) "last two days only" [ 71; 72; 81; 82 ] (rids r)

let test_query_and_empty_invalid () =
  let s = query_frame () in
  Alcotest.check_raises "And []" (Invalid_argument "Query.eval: And []")
    (fun () -> ignore (Query.eval_window s (Query.And [])))

let test_query_words_and_pp () =
  let q =
    Query.Diff (Query.And [ Query.Word 3; Query.Or [ Query.Word 1; Query.Word 2 ] ], Query.Word 9)
  in
  Alcotest.(check (list int)) "words" [ 1; 2; 3; 9 ] (Query.words q);
  Alcotest.(check string) "pp" "((w3 AND (w1 OR w2)) \\ w9)"
    (Format.asprintf "%a" Query.pp q)

let test_query_probe_cost_shared () =
  (* Repeating a word in the expression must not probe it twice. *)
  let s = query_frame () in
  let env = Scheme.env s in
  let disk = env.Env.disk in
  Wave_disk.Disk.reset_counters disk;
  ignore (Query.eval_window s (Query.And [ Query.Word 1; Query.Word 1; Query.Word 1 ]));
  let once = (Wave_disk.Disk.counters disk).Wave_disk.Disk.seeks in
  Wave_disk.Disk.reset_counters disk;
  ignore (Query.eval_window s (Query.Word 1));
  let single = (Wave_disk.Disk.counters disk).Wave_disk.Disk.seeks in
  Alcotest.(check int) "memoised probes" single once

(* --- parse_query ----------------------------------------------------- *)

let test_parse_query () =
  let v = Vocab.create () in
  let _ = Vocab.intern v "copyright" and _ = Vocab.intern v "notice" in
  (match Corpus.parse_query v "Copyright -notice" with
  | Some (Query.Diff (Query.And [ Query.Word a ], Query.Or [ Query.Word b ])) ->
    Alcotest.(check (option int)) "pos" (Vocab.find v "copyright") (Some a);
    Alcotest.(check (option int)) "neg" (Vocab.find v "notice") (Some b)
  | _ -> Alcotest.fail "unexpected parse");
  Alcotest.(check bool) "unknown positive word -> None" true
    (Corpus.parse_query v "unseenword" = None);
  Alcotest.(check bool) "unknown negation dropped" true
    (match Corpus.parse_query v "copyright -unseen" with
    | Some (Query.And [ Query.Word _ ]) -> true
    | _ -> false);
  Alcotest.(check bool) "empty -> None" true (Corpus.parse_query v "" = None)

(* --- End-to-end text search ------------------------------------------ *)

let test_text_end_to_end () =
  let vocab = Vocab.create () in
  let gen = Corpus.generator ~seed:3 ~vocab_size:300 () in
  let store =
    let cache = Hashtbl.create 16 in
    fun day ->
      match Hashtbl.find_opt cache day with
      | Some b -> b
      | None ->
        let docs =
          List.init 5 (fun i ->
              { Corpus.rid = (day * 100) + i; text = Corpus.article gen ~words:40 })
        in
        let b = Corpus.index_documents vocab ~day docs in
        Hashtbl.add cache day b;
        b
  in
  let env = Env.create ~store ~technique:Env.Packed_shadow ~w:5 ~n:2 () in
  let s = Scheme.start Scheme.Reindex env in
  Scheme.advance_to s 12;
  Scheme.check_window_invariant s;
  (* The most frequent lexicon word should appear in most documents. *)
  let top = Corpus.lexicon_word gen 1 in
  match Corpus.parse_query vocab top with
  | None -> Alcotest.fail "top word unknown to vocab"
  | Some q ->
    let hits = Query.eval_window s q in
    Alcotest.(check bool)
      (Printf.sprintf "top word hits %d docs" (Query.Rid_set.cardinal hits))
      true
      (Query.Rid_set.cardinal hits > 10)

(* --- Contention ------------------------------------------------------ *)

let cstore day =
  Wave_storage.Entry.batch_create ~day
    (Array.init 40 (fun i ->
         {
           Wave_storage.Entry.value = 1 + (i mod 10);
           entry = { Wave_storage.Entry.rid = (day * 100) + i; day; info = 0 };
         }))

let test_contention_shadow_beats_inplace () =
  let measure technique =
    Wave_sim.Contention.measure ~day_seconds:10.0 ~scheme:Scheme.Del ~technique
      ~store:cstore ~w:6 ~n:2 ~days:12 ~queries_per_day:50 ()
  in
  let ip = measure Env.In_place in
  let ss = measure Env.Simple_shadow in
  Alcotest.(check bool)
    (Printf.sprintf "in-place wait %.4f > shadow wait %.4f"
       ip.Wave_sim.Contention.avg_wait_seconds ss.Wave_sim.Contention.avg_wait_seconds)
    true
    (ip.Wave_sim.Contention.avg_wait_seconds
    > ss.Wave_sim.Contention.avg_wait_seconds);
  Alcotest.(check bool) "in-place blocks someone" true
    (ip.Wave_sim.Contention.blocked_fraction > 0.0)

let test_contention_table () =
  let out =
    Wave_sim.Contention.compare_table ~day_seconds:10.0 ~scheme:Scheme.Del
      ~store:cstore ~w:6 ~n:2 ~days:6 ~queries_per_day:20 ()
  in
  Alcotest.(check bool) "renders" true (String.length out > 100)

let test_contention_validation () =
  Alcotest.check_raises "bad days"
    (Invalid_argument "Contention.measure: need positive days and queries")
    (fun () ->
      ignore
        (Wave_sim.Contention.measure ~scheme:Scheme.Del ~technique:Env.In_place
           ~store:cstore ~w:4 ~n:2 ~days:0 ~queries_per_day:1 ()))

(* --- Formulas --------------------------------------------------------- *)

let test_formulas_match_cost () =
  (* On evenly dividing geometries the closed forms equal the
     cycle-exact evaluation. *)
  let p = Wave_model.Scenario.scam.Wave_model.Scenario.params in
  let w = 12 and n = 3 in
  let ops =
    {
      Wave_model.Formulas.build = p.Wave_model.Params.build;
      add = p.Wave_model.Params.add;
      del = p.Wave_model.Params.del;
      cp = Wave_model.Params.cp_day p ~packed:false;
      smcp = Wave_model.Params.smcp_day p;
    }
  in
  let c = Wave_model.Cost.evaluate p ~scheme:Scheme.Del ~technique:Env.Simple_shadow ~w ~n in
  let pre, tr = Wave_model.Formulas.del_simple_shadow ops ~w ~n in
  Alcotest.(check (float 1e-6)) "DEL pre" pre c.Wave_model.Cost.pre_avg;
  Alcotest.(check (float 1e-6)) "DEL trans" tr c.Wave_model.Cost.trans_avg;
  let c = Wave_model.Cost.evaluate p ~scheme:Scheme.Reindex ~technique:Env.In_place ~w ~n in
  let _, tr = Wave_model.Formulas.reindex_any ops ~w ~n in
  Alcotest.(check (float 1e-6)) "REINDEX trans" tr c.Wave_model.Cost.trans_avg;
  (* WATA with (n-1) | (w-1): w = 13, n = 3 -> Y = 6 *)
  let c =
    Wave_model.Cost.evaluate p ~scheme:Scheme.Wata_star ~technique:Env.In_place ~w:13 ~n:3
  in
  Alcotest.(check (float 1e-6)) "WATA trans"
    (Wave_model.Formulas.wata_transition_avg ops ~w:13 ~n:3)
    c.Wave_model.Cost.trans_avg;
  Alcotest.(check int) "theorem2 consistent"
    (Wata.length_bound ~w:13 ~n:3)
    (Wave_model.Formulas.theorem2_length_bound ~w:13 ~n:3)

let test_formulas_space () =
  let w = 12 and n = 3 in
  Alcotest.(check (float 1e-9)) "del" 12.0 (Wave_model.Formulas.space_days_del ~w);
  Alcotest.(check (float 1e-9)) "r+ max" 15.0
    (Wave_model.Formulas.space_days_reindex_plus_max ~w ~n);
  Alcotest.(check (float 1e-9)) "r++ max" 18.0
    (Wave_model.Formulas.space_days_reindex_pp_max ~w ~n);
  Alcotest.(check (float 1e-9)) "wata max (w=13 n=3)" 18.0
    (Wave_model.Formulas.space_days_wata_max ~w:13 ~n:3);
  Alcotest.(check (float 1e-9)) "kmrv" 1.5
    (Wave_model.Formulas.kmrv_competitive_ratio ~n:3)

let suites =
  [
    ( "text.tokenizer",
      [
        Alcotest.test_case "basic" `Quick test_tokenizer_basic;
        Alcotest.test_case "offsets" `Quick test_tokenizer_offsets;
        Alcotest.test_case "stopwords" `Quick test_tokenizer_stopwords;
        Alcotest.test_case "min length" `Quick test_tokenizer_min_length;
        Alcotest.test_case "apostrophes" `Quick test_tokenizer_apostrophes;
        Alcotest.test_case "digits" `Quick test_tokenizer_digits;
        Alcotest.test_case "distinct words" `Quick test_distinct_words;
      ] );
    ( "text.vocab",
      [
        Alcotest.test_case "roundtrip" `Quick test_vocab_roundtrip;
        Alcotest.test_case "growth" `Quick test_vocab_growth;
      ] );
    ( "text.corpus",
      [
        Alcotest.test_case "index documents" `Quick test_index_documents;
        Alcotest.test_case "article generator" `Quick test_article_generator;
        Alcotest.test_case "parse query" `Quick test_parse_query;
        Alcotest.test_case "end to end" `Quick test_text_end_to_end;
      ] );
    ( "core.query",
      [
        Alcotest.test_case "word" `Quick test_query_word;
        Alcotest.test_case "and" `Quick test_query_and;
        Alcotest.test_case "or/diff" `Quick test_query_or_diff;
        Alcotest.test_case "range restricted" `Quick test_query_range_restricted;
        Alcotest.test_case "And [] invalid" `Quick test_query_and_empty_invalid;
        Alcotest.test_case "words and pp" `Quick test_query_words_and_pp;
        Alcotest.test_case "probe cost shared" `Quick test_query_probe_cost_shared;
      ] );
    ( "sim.contention",
      [
        Alcotest.test_case "shadow beats in-place" `Quick
          test_contention_shadow_beats_inplace;
        Alcotest.test_case "table renders" `Quick test_contention_table;
        Alcotest.test_case "validation" `Quick test_contention_validation;
      ] );
    ( "model.formulas",
      [
        Alcotest.test_case "match cost evaluation" `Quick test_formulas_match_cost;
        Alcotest.test_case "space forms" `Quick test_formulas_space;
      ] );
  ]
