(* B+tree directory tests: unit cases plus model-based property tests
   against Stdlib.Map as the reference implementation. *)

open Wave_storage

module IntMap = Map.Make (Int)

let test_empty () =
  let t : int Btree.t = Btree.create () in
  Alcotest.(check int) "length" 0 (Btree.length t);
  Alcotest.(check bool) "is_empty" true (Btree.is_empty t);
  Alcotest.(check (option int)) "find" None (Btree.find t 5);
  Alcotest.(check bool) "remove" false (Btree.remove t 5);
  Alcotest.(check int) "height" 0 (Btree.height t);
  Btree.check_invariants t

let test_single () =
  let t = Btree.create () in
  Btree.insert t 42 "x";
  Alcotest.(check (option string)) "found" (Some "x") (Btree.find t 42);
  Alcotest.(check (option string)) "absent" None (Btree.find t 41);
  Alcotest.(check int) "length" 1 (Btree.length t);
  Btree.check_invariants t

let test_overwrite () =
  let t = Btree.create () in
  Btree.insert t 1 "a";
  Btree.insert t 1 "b";
  Alcotest.(check (option string)) "overwritten" (Some "b") (Btree.find t 1);
  Alcotest.(check int) "length still 1" 1 (Btree.length t);
  Btree.check_invariants t

let test_ascending_inserts () =
  let t = Btree.create ~order:4 () in
  for k = 1 to 1000 do
    Btree.insert t k (k * 2)
  done;
  Btree.check_invariants t;
  Alcotest.(check int) "length" 1000 (Btree.length t);
  for k = 1 to 1000 do
    if Btree.find t k <> Some (k * 2) then Alcotest.failf "missing key %d" k
  done;
  Alcotest.(check bool) "height > 1" true (Btree.height t > 1)

let test_descending_inserts () =
  let t = Btree.create ~order:4 () in
  for k = 1000 downto 1 do
    Btree.insert t k k
  done;
  Btree.check_invariants t;
  Alcotest.(check int) "length" 1000 (Btree.length t)

let test_iter_ordered () =
  let t = Btree.create ~order:5 () in
  let prng = Wave_util.Prng.create 31 in
  for _ = 1 to 500 do
    let k = Wave_util.Prng.int prng 10_000 in
    Btree.insert t k k
  done;
  let prev = ref min_int in
  Btree.iter t (fun k _ ->
      if k <= !prev then Alcotest.fail "iter out of order";
      prev := k)

let test_min_max () =
  let t = Btree.create () in
  Btree.insert t 5 "five";
  Btree.insert t 1 "one";
  Btree.insert t 9 "nine";
  Alcotest.(check (option (pair int string))) "min" (Some (1, "one"))
    (Btree.min_binding t);
  Alcotest.(check (option (pair int string))) "max" (Some (9, "nine"))
    (Btree.max_binding t)

let test_range () =
  let t = Btree.create ~order:4 () in
  for k = 0 to 99 do
    Btree.insert t (k * 2) k (* even keys 0..198 *)
  done;
  let r = Btree.range t ~lo:10 ~hi:20 in
  Alcotest.(check (list (pair int int)))
    "range [10,20]"
    [ (10, 5); (12, 6); (14, 7); (16, 8); (18, 9); (20, 10) ]
    r;
  Alcotest.(check (list (pair int int))) "empty range" [] (Btree.range t ~lo:201 ~hi:300);
  Alcotest.(check int) "full range" 100 (List.length (Btree.range t ~lo:min_int ~hi:max_int))

let test_remove_then_structure () =
  let t = Btree.create ~order:4 () in
  for k = 1 to 200 do
    Btree.insert t k k
  done;
  (* Remove every third key and re-verify after each step. *)
  let removed = ref 0 in
  for k = 1 to 200 do
    if k mod 3 = 0 then begin
      Alcotest.(check bool) "removed" true (Btree.remove t k);
      incr removed;
      Btree.check_invariants t
    end
  done;
  Alcotest.(check int) "length" (200 - !removed) (Btree.length t);
  for k = 1 to 200 do
    let expect = k mod 3 <> 0 in
    if Btree.mem t k <> expect then Alcotest.failf "membership wrong at %d" k
  done

let test_remove_all () =
  let t = Btree.create ~order:4 () in
  let keys = Array.init 300 (fun i -> i * 7 mod 301) in
  Array.iter (fun k -> Btree.insert t k k) keys;
  Array.iter
    (fun k ->
      ignore (Btree.remove t k);
      Btree.check_invariants t)
    keys;
  Alcotest.(check int) "empty after removing all" 0 (Btree.length t);
  Alcotest.(check bool) "is_empty" true (Btree.is_empty t)

let test_remove_absent () =
  let t = Btree.create () in
  Btree.insert t 1 "a";
  Alcotest.(check bool) "absent remove" false (Btree.remove t 2);
  Alcotest.(check int) "unchanged" 1 (Btree.length t)

let test_order_validation () =
  Alcotest.check_raises "too small order"
    (Invalid_argument "Btree.create: order must be >= 4") (fun () ->
      ignore (Btree.create ~order:3 () : unit Btree.t))

(* Model-based random testing: apply a random operation sequence to both
   the B+tree and a Map, compare observable behaviour, and validate
   structural invariants at the end. *)
type op = Insert of int * int | Remove of int | Find of int

let gen_ops =
  QCheck2.Gen.(
    let op =
      frequency
        [
          (5, map2 (fun k v -> Insert (k, v)) (int_range 0 400) small_int);
          (3, map (fun k -> Remove k) (int_range 0 400));
          (2, map (fun k -> Find k) (int_range 0 400));
        ]
    in
    list_size (int_range 0 600) op)

let run_model order ops =
  let t = Btree.create ~order () in
  let m = ref IntMap.empty in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Insert (k, v) ->
        Btree.insert t k v;
        m := IntMap.add k v !m
      | Remove k ->
        let was = Btree.remove t k in
        let expect = IntMap.mem k !m in
        if was <> expect then ok := false;
        m := IntMap.remove k !m
      | Find k ->
        if Btree.find t k <> IntMap.find_opt k !m then ok := false)
    ops;
  Btree.check_invariants t;
  if Btree.length t <> IntMap.cardinal !m then ok := false;
  if Btree.to_list t <> IntMap.bindings !m then ok := false;
  !ok

let prop_model_order4 =
  QCheck2.Test.make ~name:"btree matches Map (order 4)" ~count:300 gen_ops
    (run_model 4)

let prop_model_order5 =
  QCheck2.Test.make ~name:"btree matches Map (order 5)" ~count:300 gen_ops
    (run_model 5)

let prop_model_order32 =
  QCheck2.Test.make ~name:"btree matches Map (order 32)" ~count:200 gen_ops
    (run_model 32)

let prop_range_matches_filter =
  QCheck2.Test.make ~name:"range = filtered bindings" ~count:300
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 200) (int_range 0 300))
        (int_range 0 300) (int_range 0 300))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = Btree.create ~order:6 () in
      List.iter (fun k -> Btree.insert t k (k * 3)) keys;
      let expect =
        List.sort_uniq compare keys
        |> List.filter (fun k -> k >= lo && k <= hi)
        |> List.map (fun k -> (k, k * 3))
      in
      Btree.range t ~lo ~hi = expect)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "storage.btree",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "single" `Quick test_single;
        Alcotest.test_case "overwrite" `Quick test_overwrite;
        Alcotest.test_case "ascending inserts" `Quick test_ascending_inserts;
        Alcotest.test_case "descending inserts" `Quick test_descending_inserts;
        Alcotest.test_case "iter ordered" `Quick test_iter_ordered;
        Alcotest.test_case "min/max" `Quick test_min_max;
        Alcotest.test_case "range" `Quick test_range;
        Alcotest.test_case "remove keeps structure" `Quick test_remove_then_structure;
        Alcotest.test_case "remove all" `Quick test_remove_all;
        Alcotest.test_case "remove absent" `Quick test_remove_absent;
        Alcotest.test_case "order validation" `Quick test_order_validation;
      ]
      @ qcheck
          [
            prop_model_order4;
            prop_model_order5;
            prop_model_order32;
            prop_range_matches_filter;
          ] );
  ]
