test/test_misc.ml: Alcotest Array Dayset Directory Entry Env Frame Index List Scheme Wave_core Wave_storage
