test/test_model.ml: Alcotest Cost Env Float List Params Printf QCheck2 QCheck_alcotest Scenario Scheme Wata Wave_core Wave_model
