test/test_util.ml: Alcotest Array Float Fun Int64 List Printf Prng QCheck2 QCheck_alcotest Stats String Table_print Wave_util Zipf
