test/test_storage.ml: Alcotest Array Directory Disk Entry Hashtbl Index List Option Printf QCheck2 QCheck_alcotest Wave_disk Wave_storage Wave_util
