test/test_workload.ml: Alcotest Array Entry Hashtbl List Netnews Option Printf QCheck2 QCheck_alcotest Query_gen Tpcd Wave_storage Wave_util Wave_workload
