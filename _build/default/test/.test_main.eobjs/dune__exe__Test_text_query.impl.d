test/test_text_query.ml: Alcotest Array Corpus Env Format Hashtbl List Option Printf Query Scheme String Tokenizer Vocab Wata Wave_core Wave_disk Wave_model Wave_sim Wave_storage Wave_text
