test/test_update.ml: Alcotest Array Entry Env Frame Index List QCheck2 QCheck_alcotest Scheme Update Wave_core Wave_sim Wave_storage
