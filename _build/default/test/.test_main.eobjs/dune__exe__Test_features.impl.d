test/test_features.ml: Alcotest Array Env Frame List Multi_disk Printf Scheme String Update Wave_core Wave_disk Wave_sim Wave_storage
