test/test_disk.ml: Alcotest Disk List QCheck2 QCheck_alcotest Wave_disk Wave_util
