test/test_extensions.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Wata_bounded Wata_offline Wata_size Wave_sim Wave_workload
