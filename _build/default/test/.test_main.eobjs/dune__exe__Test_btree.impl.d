test/test_btree.ml: Alcotest Array Btree Int List Map QCheck2 QCheck_alcotest Wave_storage Wave_util
