test/test_sim.ml: Alcotest Array Env Frame List Printf QCheck2 QCheck_alcotest Runner Scheme Wata Wata_size Wave_core Wave_sim Wave_workload
