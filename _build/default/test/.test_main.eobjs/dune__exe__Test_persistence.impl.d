test/test_persistence.ml: Alcotest Array Bytes Char Codec Dayset Entry Env Filename Frame List Manifest Printf QCheck2 QCheck_alcotest Scheme String Sys Wave_core Wave_storage Wave_workload
