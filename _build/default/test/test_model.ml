(* Tests for the analytic cost model: the closed forms of Tables 8-11
   where the paper states them exactly, and the qualitative claims its
   Section 6 figures rest on. *)

open Wave_core
open Wave_model

let scam = Scenario.scam.Scenario.params
let wse = Scenario.wse.Scenario.params
let tpcd = Scenario.tpcd.Scenario.params

let eval ?(p = scam) ?(technique = Env.Simple_shadow) scheme ~w ~n =
  Cost.evaluate p ~scheme ~technique ~w ~n

let close ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* --- Table 10/11 rows the paper states exactly ------------------- *)

(* DEL, simple shadow: precomputation = X*CP + Del, transition = Add. *)
let test_del_simple_shadow_maintenance () =
  let w = 10 and n = 2 in
  let s = eval Scheme.Del ~w ~n in
  let x = float_of_int w /. float_of_int n in
  close "pre = X*CP + Del"
    ((x *. Params.cp_day scam ~packed:false) +. scam.Params.del)
    s.Cost.pre_avg;
  close "trans = Add" scam.Params.add s.Cost.trans_avg

(* DEL, packed shadow: precomputation = 0, transition = X*SMCP + Build. *)
let test_del_packed_shadow_maintenance () =
  let w = 10 and n = 2 in
  let s = eval ~technique:Env.Packed_shadow Scheme.Del ~w ~n in
  close "pre = 0" 0.0 s.Cost.pre_avg;
  close "trans = X*SMCP + Build"
    ((5.0 *. Params.smcp_day scam) +. scam.Params.build)
    s.Cost.trans_avg

(* REINDEX: transition = X*Build under every technique. *)
let test_reindex_maintenance () =
  List.iter
    (fun technique ->
      let s = eval ~technique Scheme.Reindex ~w:10 ~n:2 in
      close "pre = 0" 0.0 s.Cost.pre_avg;
      close "trans = X*Build" (5.0 *. scam.Params.build) s.Cost.trans_avg)
    [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ]

(* REINDEX+ indexes about half the DAYS REINDEX does per transition
   (Section 4.1).  Measure days, not seconds: set Add = Build = 1 so the
   transition time counts days indexed. *)
let test_reindex_plus_halves_work () =
  let p =
    (* Unit costs per day indexed; zero-size days so index copies (CP)
       do not contribute — the claim counts indexing work only. *)
    { scam with Params.add = 1.0; build = 1.0; del = 1.0;
      s_packed = 0.0; s_unpacked = 0.0 }
  in
  let w = 20 and n = 2 in
  let r = Cost.evaluate p ~scheme:Scheme.Reindex ~technique:Env.In_place ~w ~n in
  let rp =
    Cost.evaluate p ~scheme:Scheme.Reindex_plus ~technique:Env.In_place ~w ~n
  in
  let ratio = rp.Cost.trans_avg /. r.Cost.trans_avg in
  Alcotest.(check bool)
    (Printf.sprintf "days ratio %.2f in [0.4, 0.75]" ratio)
    true
    (ratio > 0.4 && ratio < 0.75)

(* REINDEX++: transition is a single AddToIndex; the rest of REINDEX+'s
   work moved into pre-computation (same total, paper Section 4.2). *)
let test_reindex_pp_transition_is_one_add () =
  let s = eval Scheme.Reindex_pp ~w:10 ~n:2 in
  close "trans = Add" scam.Params.add s.Cost.trans_avg;
  Alcotest.(check bool) "pre-computation nonzero" true (s.Cost.pre_avg > 0.0);
  let rp = eval Scheme.Reindex_plus ~w:10 ~n:2 in
  let total_pp = s.Cost.pre_avg +. s.Cost.trans_avg in
  let total_p = rp.Cost.pre_avg +. rp.Cost.trans_avg in
  Alcotest.(check bool)
    (Printf.sprintf "totals comparable (%.0f vs %.0f)" total_pp total_p)
    true
    (total_pp < 1.4 *. total_p)

(* WATA*: no deletion cost anywhere; transition bounded by one Add or
   one Build. *)
let test_wata_cheap_maintenance () =
  let s = eval Scheme.Wata_star ~w:10 ~n:4 in
  Alcotest.(check bool) "trans <= Add" true (s.Cost.trans_avg <= scam.Params.add);
  let ip = eval ~technique:Env.In_place Scheme.Wata_star ~w:10 ~n:4 in
  close "in-place pre = 0" 0.0 ip.Cost.pre_avg

(* --- Space (Table 8) --------------------------------------------- *)

(* REINDEX stores exactly W packed days; minimal among all schemes. *)
let test_reindex_space_minimal () =
  let w = 7 in
  for n = 1 to w do
    let r = eval Scheme.Reindex ~w ~n in
    close "REINDEX space = W*S" (float_of_int w *. scam.Params.s_packed)
      r.Cost.space_avg;
    List.iter
      (fun scheme ->
        if Scheme.min_indexes scheme <= n then begin
          let s = eval scheme ~w ~n in
          if s.Cost.space_avg +. s.Cost.shadow_avg
             < r.Cost.space_avg +. r.Cost.shadow_avg -. 1.0
          then
            Alcotest.failf "%s beats REINDEX on space at n=%d" (Scheme.name scheme) n
        end)
      Scheme.all
  done

(* All schemes need less space as n grows (Figure 3's trend). *)
let test_space_decreases_with_n () =
  List.iter
    (fun scheme ->
      let prev = ref infinity in
      for n = max 2 (Scheme.min_indexes scheme) to 7 do
        let s = eval scheme ~w:7 ~n in
        let total = s.Cost.space_avg +. s.Cost.shadow_avg in
        if total > !prev +. 1.0 then
          Alcotest.failf "%s space grows from n=%d" (Scheme.name scheme) n;
        prev := total
      done)
    Scheme.all

(* WATA* max length matches Theorem 2: (W + ceil((W-1)/(n-1)) - 1) days. *)
let test_wata_space_max_is_theorem2 () =
  let w = 10 and n = 4 in
  let s = eval Scheme.Wata_star ~w ~n in
  let bound_days = float_of_int (Wata.length_bound ~w ~n) in
  close "max space = bound * S'" (bound_days *. scam.Params.s_unpacked)
    s.Cost.space_max

(* In-place updating needs no transition space; shadowing does. *)
let test_shadow_space_by_technique () =
  let ip = eval ~technique:Env.In_place Scheme.Del ~w:10 ~n:2 in
  close "in-place shadow = 0" 0.0 ip.Cost.shadow_max;
  let ss = eval ~technique:Env.Simple_shadow Scheme.Del ~w:10 ~n:2 in
  close "simple shadow = X*S'" (5.0 *. scam.Params.s_unpacked) ss.Cost.shadow_max

(* --- Query model (Table 9) --------------------------------------- *)

let test_probe_formula () =
  let w = 10 and n = 2 in
  let s = eval Scheme.Reindex ~w ~n in
  let expected =
    2.0 *. (scam.Params.seek +. (5.0 *. scam.Params.c_bucket /. scam.Params.trans))
  in
  close "probe = n*(seek + X*c/Trans)" expected s.Cost.probe_seconds

let test_scan_packed_cheaper () =
  let ss = eval ~technique:Env.Simple_shadow Scheme.Del ~w:10 ~n:2 in
  let ps = eval ~technique:Env.Packed_shadow Scheme.Del ~w:10 ~n:2 in
  Alcotest.(check bool) "packed scans cheaper" true
    (ps.Cost.scan_seconds < ss.Cost.scan_seconds)

let test_wata_scans_pay_soft_window () =
  let wata = eval Scheme.Wata_star ~w:10 ~n:4 in
  let del = eval Scheme.Del ~w:10 ~n:4 in
  Alcotest.(check bool) "WATA scans pricier than DEL" true
    (wata.Cost.scan_seconds > del.Cost.scan_seconds)

(* --- Figure-level qualitative claims ------------------------------ *)

(* Figure 4: REINDEX's transition crosses below DEL's at n = 4 in SCAM. *)
let test_fig4_reindex_crossover () =
  let t n = (eval Scheme.Reindex ~w:7 ~n).Cost.trans_avg in
  let del n = (eval Scheme.Del ~w:7 ~n).Cost.trans_avg in
  Alcotest.(check bool) "n=3: REINDEX worse" true (t 3 > del 3);
  Alcotest.(check bool) "n=4: REINDEX better" true (t 4 < del 4)

(* Figure 4: DEL and REINDEX++ transition flat in n. *)
let test_fig4_flat_schemes () =
  List.iter
    (fun scheme ->
      let t2 = (eval scheme ~w:7 ~n:2).Cost.trans_avg in
      let t7 = (eval scheme ~w:7 ~n:7).Cost.trans_avg in
      if Float.abs (t2 -. t7) > 0.05 *. t2 then
        Alcotest.failf "%s transition varies with n" (Scheme.name scheme))
    [ Scheme.Del; Scheme.Reindex_pp ]

(* Figure 6: for the WSE under packed shadowing, REINDEX does the most
   work and DEL(n=1) the least. *)
let test_fig6_wse_recommendation () =
  let work scheme n =
    (Cost.evaluate wse ~scheme ~technique:Env.Packed_shadow ~w:35 ~n).Cost.work_per_day
  in
  let del1 = work Scheme.Del 1 in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "REINDEX worst at n=%d" n)
        true
        (work Scheme.Reindex n > work Scheme.Del n))
    [ 1; 2; 3; 5; 7 ];
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "DEL(1) <= DEL(%d)" n)
        true (del1 <= work Scheme.Del n))
    [ 2; 3; 5; 7 ]

(* Figure 8: TPC-D with simple shadowing, WATA* does the least work and
   beats DEL by thousands of seconds (the paper: "up to 10,000"). *)
let test_fig8_tpcd_wata_wins () =
  let work scheme n =
    (Cost.evaluate tpcd ~scheme ~technique:Env.Simple_shadow ~w:100 ~n)
      .Cost.work_per_day
  in
  let advantage = work Scheme.Del 10 -. work Scheme.Wata_star 10 in
  Alcotest.(check bool)
    (Printf.sprintf "WATA advantage %.0fs in [5000, 15000]" advantage)
    true
    (advantage > 5_000.0 && advantage < 15_000.0);
  Alcotest.(check bool) "RATA also behind WATA" true
    (work Scheme.Rata_star 10 > work Scheme.Wata_star 10)

(* Figure 9: reindexing schemes scale O(W/n) in W; DEL/WATA/RATA flat. *)
let test_fig9_w_scaling () =
  let trans scheme w = (eval scheme ~w ~n:4).Cost.trans_avg in
  let growth scheme = trans scheme 42 /. trans scheme 7 in
  Alcotest.(check bool) "REINDEX grows ~6x" true
    (growth Scheme.Reindex > 4.0);
  Alcotest.(check bool) "DEL flat" true (growth Scheme.Del < 1.1);
  Alcotest.(check bool) "WATA flat" true (growth Scheme.Wata_star < 1.3);
  Alcotest.(check bool) "RATA flat" true (growth Scheme.Rata_star < 1.3)

(* Figure 10: with the calibrated CONTIGUOUS scaling, WATA* wins for
   SF <= 3 and REINDEX for larger SF (SCAM, W = 14, n = 4). *)
let test_fig10_sf_crossover () =
  let work scheme sf =
    let p = Params.scale scam sf in
    (Cost.evaluate p ~scheme ~technique:Env.Simple_shadow ~w:14 ~n:4)
      .Cost.work_per_day
  in
  List.iter
    (fun sf ->
      Alcotest.(check bool)
        (Printf.sprintf "WATA wins at SF=%.1f" sf)
        true
        (work Scheme.Wata_star sf < work Scheme.Reindex sf))
    [ 0.5; 1.0; 2.0 ];
  List.iter
    (fun sf ->
      Alcotest.(check bool)
        (Printf.sprintf "REINDEX wins at SF=%.1f" sf)
        true
        (work Scheme.Reindex sf < work Scheme.Wata_star sf))
    [ 4.0; 5.0 ]

(* --- Parameter plumbing ------------------------------------------- *)

let test_scale_linearity () =
  let p2 = Params.scale scam 2.0 in
  close "S scales" (2.0 *. scam.Params.s_packed) p2.Params.s_packed;
  close "build scales" (2.0 *. scam.Params.build) p2.Params.build;
  Alcotest.(check bool) "add superlinear" true (p2.Params.add > 2.0 *. scam.Params.add)

let test_scale_invalid () =
  Alcotest.check_raises "sf=0"
    (Invalid_argument "Params.scale: non-positive scale factor") (fun () ->
      ignore (Params.scale scam 0.0))

let test_evaluate_validation () =
  Alcotest.(check bool) "wata n=1 rejected" true
    (try
       ignore (eval Scheme.Wata_star ~w:10 ~n:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "n>w rejected" true
    (try
       ignore (eval Scheme.Del ~w:3 ~n:4);
       false
     with Invalid_argument _ -> true)

let test_scenarios () =
  Alcotest.(check int) "three scenarios" 3 (List.length Scenario.all);
  Alcotest.(check bool) "find scam" true (Scenario.find "scam" <> None);
  Alcotest.(check bool) "find unknown" true (Scenario.find "nope" = None);
  Alcotest.(check (float 0.001)) "w scam" 7.0 (float_of_int Scenario.scam.Scenario.w);
  Alcotest.(check (float 0.001)) "w wse" 35.0 (float_of_int Scenario.wse.Scenario.w);
  Alcotest.(check (float 0.001)) "w tpcd" 100.0 (float_of_int Scenario.tpcd.Scenario.w)

let test_constituents_packed () =
  Alcotest.(check bool) "reindex always packed" true
    (Cost.constituents_packed ~scheme:Scheme.Reindex ~technique:Env.In_place);
  Alcotest.(check bool) "del in place unpacked" false
    (Cost.constituents_packed ~scheme:Scheme.Del ~technique:Env.In_place);
  Alcotest.(check bool) "del packed shadow packed" true
    (Cost.constituents_packed ~scheme:Scheme.Del ~technique:Env.Packed_shadow)

(* Property: work is positive and finite for every valid combination. *)
let prop_work_sane =
  QCheck2.Test.make ~name:"model work positive and finite" ~count:200
    QCheck2.Gen.(
      tup4 (int_range 0 5) (int_range 2 40) (int_range 1 8) (int_range 0 2))
    (fun (kind_i, w, n, tech_i) ->
      let scheme = List.nth Scheme.all kind_i in
      let n = max (Scheme.min_indexes scheme) (min n w) in
      QCheck2.assume (n <= w);
      let technique =
        List.nth [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ] tech_i
      in
      let s = Cost.evaluate scam ~scheme ~technique ~w ~n in
      s.Cost.work_per_day > 0.0
      && Float.is_finite s.Cost.work_per_day
      && s.Cost.space_avg > 0.0
      && s.Cost.space_max >= s.Cost.space_avg -. 1e-6
      && s.Cost.pre_max >= s.Cost.pre_avg -. 1e-6
      && s.Cost.trans_max >= s.Cost.trans_avg -. 1e-6)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "model.maintenance",
      [
        Alcotest.test_case "DEL simple shadow" `Quick test_del_simple_shadow_maintenance;
        Alcotest.test_case "DEL packed shadow" `Quick test_del_packed_shadow_maintenance;
        Alcotest.test_case "REINDEX" `Quick test_reindex_maintenance;
        Alcotest.test_case "REINDEX+ halves work" `Quick test_reindex_plus_halves_work;
        Alcotest.test_case "REINDEX++ one-add transition" `Quick
          test_reindex_pp_transition_is_one_add;
        Alcotest.test_case "WATA cheap maintenance" `Quick test_wata_cheap_maintenance;
      ] );
    ( "model.space",
      [
        Alcotest.test_case "REINDEX minimal" `Quick test_reindex_space_minimal;
        Alcotest.test_case "decreases with n" `Quick test_space_decreases_with_n;
        Alcotest.test_case "WATA max = Theorem 2" `Quick test_wata_space_max_is_theorem2;
        Alcotest.test_case "shadow by technique" `Quick test_shadow_space_by_technique;
      ] );
    ( "model.queries",
      [
        Alcotest.test_case "probe formula" `Quick test_probe_formula;
        Alcotest.test_case "packed scans cheaper" `Quick test_scan_packed_cheaper;
        Alcotest.test_case "WATA scans pay soft window" `Quick
          test_wata_scans_pay_soft_window;
      ] );
    ( "model.figures",
      [
        Alcotest.test_case "fig4 crossover" `Quick test_fig4_reindex_crossover;
        Alcotest.test_case "fig4 flat schemes" `Quick test_fig4_flat_schemes;
        Alcotest.test_case "fig6 WSE recommendation" `Quick test_fig6_wse_recommendation;
        Alcotest.test_case "fig8 TPC-D WATA wins" `Quick test_fig8_tpcd_wata_wins;
        Alcotest.test_case "fig9 W scaling" `Quick test_fig9_w_scaling;
        Alcotest.test_case "fig10 SF crossover" `Quick test_fig10_sf_crossover;
      ] );
    ( "model.params",
      [
        Alcotest.test_case "scale linearity" `Quick test_scale_linearity;
        Alcotest.test_case "scale invalid" `Quick test_scale_invalid;
        Alcotest.test_case "evaluate validation" `Quick test_evaluate_validation;
        Alcotest.test_case "scenarios" `Quick test_scenarios;
        Alcotest.test_case "constituents packed" `Quick test_constituents_packed;
      ]
      @ qcheck [ prop_work_sane ] );
  ]
