(* Tests for the WATA extensions: the offline-optimal scheduler and the
   size-bounded online (KMRV97-style) variant. *)

open Wave_sim

(* Brute-force reference: enumerate every boundary subset of a small
   trace, keep the feasible ones (at most n live clusters on any day),
   and minimise peak storage. *)
let brute_force ~w ~n ~sizes =
  let t = Array.length sizes in
  let feasible boundaries =
    List.for_all
      (fun d ->
        let live =
          1 + List.length (List.filter (fun b -> b > d - w && b < d) boundaries)
        in
        live <= n)
      (List.init t (fun i -> i + 1))
  in
  let best = ref max_int in
  let rec go day boundaries =
    if day > t then begin
      if feasible boundaries then
        let cost =
          Wata_offline.size_of_schedule ~w ~sizes ~boundaries:(List.rev boundaries)
        in
        if cost < !best then best := cost
    end
    else begin
      go (day + 1) boundaries;
      go (day + 1) (day :: boundaries)
    end
  in
  go 1 [];
  !best

let test_offline_matches_brute_force () =
  let cases =
    [
      (3, 2, [| 5; 1; 1; 9; 1; 1; 5; 2 |]);
      (4, 2, [| 1; 2; 3; 4; 5; 6; 7; 8 |]);
      (3, 3, [| 10; 1; 10; 1; 10; 1; 10 |]);
      (5, 2, [| 2; 2; 2; 2; 2; 2; 2; 2; 2 |]);
      (4, 3, [| 7; 1; 1; 1; 7; 1; 1; 1; 7 |]);
    ]
  in
  List.iter
    (fun (w, n, sizes) ->
      let opt = Wata_offline.optimal ~w ~n ~sizes in
      let bf = brute_force ~w ~n ~sizes in
      Alcotest.(check int)
        (Printf.sprintf "w=%d n=%d optimal matches brute force" w n)
        bf opt.Wata_offline.max_size)
    cases

let prop_offline_matches_brute_force =
  QCheck2.Test.make ~name:"offline optimum = brute force (small traces)"
    ~count:60
    QCheck2.Gen.(
      triple (int_range 2 5) (int_range 2 4)
        (array_size (int_range 6 10) (int_range 1 20)))
    (fun (w, n, sizes) ->
      QCheck2.assume (Array.length sizes >= w && n <= w);
      let opt = Wata_offline.optimal ~w ~n ~sizes in
      opt.Wata_offline.max_size = brute_force ~w ~n ~sizes)

let test_offline_bounds () =
  let sizes =
    Array.init 120 (fun i ->
        Wave_workload.Netnews.daily_volume
          { Wave_workload.Netnews.default_config with Wave_workload.Netnews.mean_postings = 1000 }
          (i + 1))
  in
  List.iter
    (fun (w, n) ->
      let opt = Wata_offline.optimal ~w ~n ~sizes in
      let star = Wata_size.replay ~w ~n ~sizes in
      let wmax = Wata_size.window_max ~w ~sizes in
      (* OPT is sandwiched: window_max <= OPT <= WATA*. *)
      Alcotest.(check bool) "OPT >= window max" true
        (opt.Wata_offline.max_size >= wmax);
      Alcotest.(check bool) "OPT <= WATA*" true
        (opt.Wata_offline.max_size <= star.Wata_size.wata_max_size);
      (* And Theorem 3 in its strong form: WATA* <= 2 OPT. *)
      Alcotest.(check bool) "WATA* <= 2 OPT" true
        (star.Wata_size.wata_max_size <= 2 * opt.Wata_offline.max_size))
    [ (7, 2); (7, 4); (14, 3); (21, 5) ]

let test_offline_schedule_valid () =
  let sizes = Array.init 50 (fun i -> 1 + ((i * 13) mod 31)) in
  let opt = Wata_offline.optimal ~w:6 ~n:3 ~sizes in
  (* The reported max must equal an independent evaluation. *)
  Alcotest.(check int) "self-consistent"
    opt.Wata_offline.max_size
    (Wata_offline.size_of_schedule ~w:6 ~sizes
       ~boundaries:opt.Wata_offline.boundaries)

let test_feasibility_monotone () =
  let sizes = Array.init 40 (fun i -> 1 + (i mod 9)) in
  let opt = Wata_offline.optimal ~w:5 ~n:2 ~sizes in
  let m = opt.Wata_offline.max_size in
  Alcotest.(check bool) "feasible at optimum" true
    (Wata_offline.feasible_with ~w:5 ~n:2 ~sizes ~budget:m <> None);
  Alcotest.(check bool) "infeasible below optimum" true
    (Wata_offline.feasible_with ~w:5 ~n:2 ~sizes ~budget:(m - 1) = None)

let test_size_of_schedule_validation () =
  Alcotest.check_raises "unsorted boundaries"
    (Invalid_argument "Wata_offline.size_of_schedule: bad boundary list")
    (fun () ->
      ignore
        (Wata_offline.size_of_schedule ~w:3 ~sizes:[| 1; 1; 1; 1 |]
           ~boundaries:[ 3; 2 ]))

(* --- Wata_bounded -------------------------------------------------- *)

let test_bounded_beats_guarantee_on_smooth_traces () =
  let sizes = Array.make 150 100 in
  List.iter
    (fun n ->
      let m = Wata_size.window_max ~w:10 ~sizes in
      let b = Wata_bounded.replay ~w:10 ~n ~m ~sizes in
      let bound = Wata_bounded.guaranteed_ratio ~n in
      (* one cluster cap of slack plus one day of rounding *)
      let slack = (float_of_int m /. float_of_int (n - 1)) +. 100.0 in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: size %d within n/(n-1) bound" n b.Wata_bounded.max_size)
        true
        (float_of_int b.Wata_bounded.max_size
        <= (bound *. float_of_int m) +. slack))
    [ 2; 3; 5 ]

let test_bounded_meets_its_guarantee () =
  (* The KMRV97 point is the GUARANTEE n/(n-1), better than WATA*'s 2.0
     (pointwise either can win on a friendly trace).  On the seasonal
     trace the bounded policy must stay within its own bound (plus one
     cluster-cap of discretisation slack), including at n = 2 where
     WATA* measurably exceeds it. *)
  let sizes =
    Array.init 200 (fun i ->
        Wave_workload.Netnews.daily_volume
          { Wave_workload.Netnews.default_config with Wave_workload.Netnews.mean_postings = 70_000 }
          (i + 1))
  in
  let m = Wata_size.window_max ~w:7 ~sizes in
  let max_day = Array.fold_left max 0 sizes in
  List.iter
    (fun n ->
      let b = Wata_bounded.replay ~w:7 ~n ~m ~sizes in
      let cap = (m + n - 2) / (n - 1) in
      let limit =
        (Wata_bounded.guaranteed_ratio ~n *. float_of_int m)
        +. float_of_int max_day
      in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d bounded size %d within %.0f (cap %d)" n
           b.Wata_bounded.max_size limit cap)
        true
        (float_of_int b.Wata_bounded.max_size <= limit))
    [ 2; 3; 4; 5 ];
  (* For n >= 3 the guarantee n/(n-1) is strictly better than WATA*'s
     2.0, and the measured ratio must honour it (max_day slack covers
     cap rounding on a discrete trace). *)
  let b3 = Wata_bounded.replay ~w:7 ~n:3 ~m ~sizes in
  Alcotest.(check bool)
    (Printf.sprintf "n=3 ratio %.3f within 1.5 + slack" b3.Wata_bounded.ratio)
    true
    (b3.Wata_bounded.ratio
    <= Wata_bounded.guaranteed_ratio ~n:3
       +. (float_of_int max_day /. float_of_int m))

let test_bounded_validation () =
  Alcotest.check_raises "n=1" (Invalid_argument "Wata_bounded.replay: need n >= 2")
    (fun () -> ignore (Wata_bounded.replay ~w:3 ~n:1 ~m:10 ~sizes:[| 1; 1; 1 |]));
  Alcotest.check_raises "m=0" (Invalid_argument "Wata_bounded.replay: need m > 0")
    (fun () -> ignore (Wata_bounded.replay ~w:3 ~n:2 ~m:0 ~sizes:[| 1; 1; 1 |]))

let prop_bounded_within_two_of_window =
  (* Even with the hint, never exceed the generic 2x-plus-one-day
     envelope on random traces (cluster caps keep residues small). *)
  QCheck2.Test.make ~name:"bounded policy residue bounded" ~count:100
    QCheck2.Gen.(
      triple (int_range 4 12) (int_range 2 6)
        (array_size (int_range 20 60) (int_range 1 1000)))
    (fun (w, n, sizes) ->
      QCheck2.assume (Array.length sizes >= w && n <= w);
      let m = Wata_size.window_max ~w ~sizes in
      let b = Wata_bounded.replay ~w ~n ~m ~sizes in
      let max_day = Array.fold_left max 0 sizes in
      let cap = (m + n - 2) / (n - 1) in
      b.Wata_bounded.max_size <= m + cap + max_day)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "ext.wata_offline",
      [
        Alcotest.test_case "matches brute force" `Quick test_offline_matches_brute_force;
        Alcotest.test_case "bounds sandwich" `Quick test_offline_bounds;
        Alcotest.test_case "schedule self-consistent" `Quick test_offline_schedule_valid;
        Alcotest.test_case "feasibility monotone" `Quick test_feasibility_monotone;
        Alcotest.test_case "boundary validation" `Quick test_size_of_schedule_validation;
      ]
      @ qcheck [ prop_offline_matches_brute_force ] );
    ( "ext.wata_bounded",
      [
        Alcotest.test_case "guarantee on smooth traces" `Quick
          test_bounded_beats_guarantee_on_smooth_traces;
        Alcotest.test_case "meets its guarantee" `Quick test_bounded_meets_its_guarantee;
        Alcotest.test_case "validation" `Quick test_bounded_validation;
      ]
      @ qcheck [ prop_bounded_within_two_of_window ] );
  ]
