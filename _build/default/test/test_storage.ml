(* Tests for the conventional-index substrate: entries, directory,
   packed builds, CONTIGUOUS incremental updates, shadow copies, packed
   shadow updates, disk-space accounting. *)

open Wave_disk
open Wave_storage

let cfg = Index.default_config
let fresh_disk () = Index.make_disk cfg

let entry ~rid ~day ?(info = 0) () = { Entry.rid; day; info }

let posting value e = { Entry.value; entry = e }

(* A deterministic batch: [per_value] entries for each value in [values]. *)
let batch ~day ~values ~per_value =
  let postings =
    List.concat_map
      (fun v ->
        List.init per_value (fun i ->
            posting v (entry ~rid:((day * 1_000_000) + (v * 100) + i) ~day ())))
      values
    |> Array.of_list
  in
  Entry.batch_create ~day postings

let sorted_entries es = List.sort Entry.compare es

let check_entries msg expected actual =
  Alcotest.(check int) (msg ^ " (cardinality)") (List.length expected)
    (List.length actual);
  List.iter2
    (fun a b ->
      if not (Entry.equal a b) then Alcotest.failf "%s: entry mismatch" msg)
    (sorted_entries expected) (sorted_entries actual)

(* ------------------------------------------------------------------ *)
(* Entry                                                              *)
(* ------------------------------------------------------------------ *)

let test_batch_day_validation () =
  Alcotest.check_raises "wrong day"
    (Invalid_argument "Entry.batch_create: posting day mismatch") (fun () ->
      ignore
        (Entry.batch_create ~day:3 [| posting 1 (entry ~rid:1 ~day:4 ()) |]))

let test_group_by_value () =
  let b =
    Entry.batch_create ~day:1
      [|
        posting 5 (entry ~rid:10 ~day:1 ());
        posting 2 (entry ~rid:11 ~day:1 ());
        posting 5 (entry ~rid:12 ~day:1 ());
      |]
  in
  match Entry.group_by_value b.Entry.postings with
  | [ (2, [ e2 ]); (5, [ e5a; e5b ]) ] ->
    Alcotest.(check int) "value-2 rid" 11 e2.Entry.rid;
    Alcotest.(check int) "value-5 order a" 10 e5a.Entry.rid;
    Alcotest.(check int) "value-5 order b" 12 e5b.Entry.rid
  | _ -> Alcotest.fail "unexpected grouping"

(* ------------------------------------------------------------------ *)
(* Directory                                                          *)
(* ------------------------------------------------------------------ *)

let directory_roundtrip kind () =
  let d : int Directory.t = Directory.create kind in
  List.iter (fun k -> Directory.set d k (k * 10)) [ 5; 1; 9; 3 ];
  Alcotest.(check int) "length" 4 (Directory.length d);
  Alcotest.(check (option int)) "find" (Some 30) (Directory.find d 3);
  Directory.remove d 3;
  Alcotest.(check (option int)) "removed" None (Directory.find d 3);
  Alcotest.(check (list int)) "ordered" [ 1; 5; 9 ] (Directory.values_ordered d)

(* ------------------------------------------------------------------ *)
(* Index: packed build                                                *)
(* ------------------------------------------------------------------ *)

let test_build_empty () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [] in
  Alcotest.(check int) "entries" 0 (Index.entry_count idx);
  Alcotest.(check bool) "packed" true (Index.is_packed idx);
  Alcotest.(check int) "no disk use" 0 (Disk.live_blocks d);
  Index.validate idx

let test_build_packed () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [ batch ~day:1 ~values:[ 1; 2; 3 ] ~per_value:4 ] in
  Alcotest.(check int) "entries" 12 (Index.entry_count idx);
  Alcotest.(check bool) "packed" true (Index.is_packed idx);
  Alcotest.(check int) "minimal allocation" 12 (Index.allocated_blocks idx);
  Alcotest.(check int) "disk live matches" 12 (Disk.live_blocks d);
  Alcotest.(check (list int)) "days" [ 1 ] (Index.days idx);
  Alcotest.(check int) "distinct values" 3 (Index.distinct_values idx);
  Index.validate idx

let test_build_multi_day () =
  let d = fresh_disk () in
  let idx =
    Index.build d cfg
      [ batch ~day:1 ~values:[ 1; 2 ] ~per_value:2;
        batch ~day:2 ~values:[ 2; 3 ] ~per_value:3 ]
  in
  Alcotest.(check int) "entries" 10 (Index.entry_count idx);
  Alcotest.(check (list int)) "days" [ 1; 2 ] (Index.days idx);
  (* Value 2 holds entries from both days. *)
  let es = Index.probe idx 2 in
  Alcotest.(check int) "bucket size" 5 (List.length es);
  Index.validate idx

let test_build_write_cost () =
  let d = fresh_disk () in
  Disk.reset_counters d;
  let _idx = Index.build d cfg [ batch ~day:1 ~values:[ 1; 2 ] ~per_value:5 ] in
  let c = Disk.counters d in
  Alcotest.(check int) "one seek" 1 c.Disk.seeks;
  Alcotest.(check int) "ten blocks written" 10 c.Disk.blocks_written

let test_build_cpu_charge () =
  let cfg = { cfg with Index.build_cpu_per_entry = 0.5 } in
  let d = Index.make_disk cfg in
  Disk.reset_counters d;
  let _ = Index.build d cfg [ batch ~day:1 ~values:[ 7 ] ~per_value:4 ] in
  Alcotest.(check bool) "cpu charged (>= 2s)" true (Disk.elapsed d >= 2.0)

let test_disk_mismatch_raises () =
  let wrong = Disk.create () (* 4096-byte blocks <> 100-byte entries *) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Index.create_empty wrong cfg);
       false
     with Index.Index_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Index: probes and scans                                            *)
(* ------------------------------------------------------------------ *)

let test_probe_contents () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [ batch ~day:3 ~values:[ 1; 2 ] ~per_value:3 ] in
  Alcotest.(check int) "hit" 3 (List.length (Index.probe idx 1));
  Alcotest.(check int) "miss" 0 (List.length (Index.probe idx 99))

let test_probe_cost () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [ batch ~day:3 ~values:[ 1; 2 ] ~per_value:3 ] in
  Disk.reset_counters d;
  ignore (Index.probe idx 1);
  let c = Disk.counters d in
  Alcotest.(check int) "one seek" 1 c.Disk.seeks;
  Alcotest.(check int) "bucket blocks" 3 c.Disk.blocks_read;
  Disk.reset_counters d;
  ignore (Index.probe idx 99);
  Alcotest.(check int) "miss costs nothing" 0 (Disk.counters d).Disk.seeks

let test_probe_timed () =
  let d = fresh_disk () in
  let idx =
    Index.build d cfg
      [ batch ~day:1 ~values:[ 5 ] ~per_value:2;
        batch ~day:2 ~values:[ 5 ] ~per_value:2;
        batch ~day:3 ~values:[ 5 ] ~per_value:2 ]
  in
  Alcotest.(check int) "mid-range" 4
    (List.length (Index.probe_timed idx 5 ~t1:2 ~t2:3));
  Alcotest.(check int) "all" 6
    (List.length (Index.probe_timed idx 5 ~t1:min_int ~t2:max_int))

let test_scan_packed_cost () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [ batch ~day:1 ~values:[ 1; 2; 3; 4 ] ~per_value:5 ] in
  Disk.reset_counters d;
  let es = Index.scan idx in
  Alcotest.(check int) "all entries" 20 (List.length es);
  let c = Disk.counters d in
  Alcotest.(check int) "single seek" 1 c.Disk.seeks;
  Alcotest.(check int) "minimal transfer" 20 c.Disk.blocks_read

let test_scan_unpacked_pays_slack () =
  let d = fresh_disk () in
  let idx = Index.create_empty d cfg in
  Index.add_batch idx (batch ~day:1 ~values:[ 1; 2 ] ~per_value:3);
  Alcotest.(check bool) "unpacked" false (Index.is_packed idx);
  Disk.reset_counters d;
  ignore (Index.scan idx);
  let c = Disk.counters d in
  Alcotest.(check bool)
    (Printf.sprintf "reads allocated (%d) > used (6)" c.Disk.blocks_read)
    true
    (c.Disk.blocks_read > 6);
  Alcotest.(check int) "allocated matches charge" (Index.allocated_blocks idx)
    c.Disk.blocks_read

let test_scan_timed () =
  let d = fresh_disk () in
  let idx =
    Index.build d cfg
      [ batch ~day:1 ~values:[ 1 ] ~per_value:2; batch ~day:5 ~values:[ 2 ] ~per_value:2 ]
  in
  Alcotest.(check int) "filtered" 2 (List.length (Index.scan_timed idx ~t1:4 ~t2:9))

(* ------------------------------------------------------------------ *)
(* Index: incremental add (CONTIGUOUS)                                *)
(* ------------------------------------------------------------------ *)

let test_add_to_empty () =
  let d = fresh_disk () in
  let idx = Index.create_empty d cfg in
  Index.add_batch idx (batch ~day:1 ~values:[ 1; 2 ] ~per_value:2);
  Alcotest.(check int) "entries" 4 (Index.entry_count idx);
  Alcotest.(check bool) "not packed" false (Index.is_packed idx);
  Alcotest.(check bool) "slack allocated" true (Index.allocated_blocks idx > 4);
  Index.validate idx

let test_add_growth_respects_g () =
  let d = fresh_disk () in
  let idx = Index.create_empty d cfg in
  (* First batch: 2 entries for value 7 -> capacity max(min_alloc, 4). *)
  Index.add_batch idx (batch ~day:1 ~values:[ 7 ] ~per_value:2);
  let a1 = Index.allocated_blocks idx in
  Alcotest.(check int) "initial cap = ceil(2g)" 4 a1;
  (* Second batch fits in the slack: no growth. *)
  Index.add_batch idx (batch ~day:2 ~values:[ 7 ] ~per_value:2);
  Alcotest.(check int) "no growth while fitting" 4 (Index.allocated_blocks idx);
  (* Third batch overflows: relocate to ceil(6g) = 12. *)
  Index.add_batch idx (batch ~day:3 ~values:[ 7 ] ~per_value:2);
  Alcotest.(check int) "grown by g" 12 (Index.allocated_blocks idx);
  Index.validate idx

let test_add_in_place_append_cost () =
  let d = fresh_disk () in
  let idx = Index.create_empty d cfg in
  Index.add_batch idx (batch ~day:1 ~values:[ 7 ] ~per_value:2);
  Disk.reset_counters d;
  Index.add_batch idx (batch ~day:2 ~values:[ 7 ] ~per_value:2);
  let c = Disk.counters d in
  (* Appending into existing slack: one seek, two blocks written, no copy. *)
  Alcotest.(check int) "one seek" 1 c.Disk.seeks;
  Alcotest.(check int) "tail write only" 2 c.Disk.blocks_written;
  Alcotest.(check int) "no read" 0 c.Disk.blocks_read

let test_add_relocation_cost () =
  let d = fresh_disk () in
  let idx = Index.create_empty d cfg in
  Index.add_batch idx (batch ~day:1 ~values:[ 7 ] ~per_value:4);
  (* cap = 8, used = 4 *)
  Disk.reset_counters d;
  Index.add_batch idx (batch ~day:2 ~values:[ 7 ] ~per_value:5);
  (* overflow: read 4, write 9 into new cap 18 *)
  let c = Disk.counters d in
  Alcotest.(check int) "read old" 4 c.Disk.blocks_read;
  Alcotest.(check int) "write new" 9 c.Disk.blocks_written;
  Index.validate idx

let test_add_to_packed_unpacks () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [ batch ~day:1 ~values:[ 1 ] ~per_value:4 ] in
  Index.add_batch idx (batch ~day:2 ~values:[ 1 ] ~per_value:1);
  Alcotest.(check bool) "no longer packed" false (Index.is_packed idx);
  Alcotest.(check int) "entries" 5 (Index.entry_count idx);
  check_entries "contents preserved"
    (Index.probe idx 1)
    (Index.scan idx);
  Index.validate idx

(* ------------------------------------------------------------------ *)
(* Index: deletion                                                    *)
(* ------------------------------------------------------------------ *)

let test_delete_days () =
  let d = fresh_disk () in
  let idx =
    Index.build d cfg
      [ batch ~day:1 ~values:[ 1; 2 ] ~per_value:2;
        batch ~day:2 ~values:[ 2; 3 ] ~per_value:2 ]
  in
  let removed = Index.delete_days idx (fun day -> day = 1) in
  Alcotest.(check int) "removed" 4 removed;
  Alcotest.(check int) "left" 4 (Index.entry_count idx);
  Alcotest.(check (list int)) "days" [ 2 ] (Index.days idx);
  (* Value 1 existed only on day 1: bucket fully removed. *)
  Alcotest.(check int) "bucket gone" 0 (List.length (Index.probe idx 1));
  Alcotest.(check int) "directory shrunk" 2 (Index.distinct_values idx);
  Index.validate idx

let test_delete_nothing () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [ batch ~day:1 ~values:[ 1 ] ~per_value:3 ] in
  Disk.reset_counters d;
  let removed = Index.delete_days idx (fun day -> day = 9) in
  Alcotest.(check int) "none removed" 0 removed;
  Alcotest.(check bool) "still packed" true (Index.is_packed idx);
  Alcotest.(check int) "no disk work" 0 (Disk.counters d).Disk.seeks

let test_delete_shrinks () =
  let d = fresh_disk () in
  let idx = Index.create_empty d cfg in
  (* Build a bucket with a large capacity, then delete most of it. *)
  Index.add_batch idx (batch ~day:1 ~values:[ 7 ] ~per_value:50);
  Index.add_batch idx (batch ~day:2 ~values:[ 7 ] ~per_value:50);
  let before = Index.allocated_blocks idx in
  let _ = Index.delete_days idx (fun day -> day = 2) in
  let _ = Index.delete_days idx (fun day -> day = 1) in
  Alcotest.(check int) "all gone" 0 (Index.entry_count idx);
  Alcotest.(check bool) "space reclaimed" true (Index.allocated_blocks idx < before);
  Alcotest.(check int) "fully reclaimed" 0 (Index.allocated_blocks idx);
  Index.validate idx

let test_delete_from_shared_keeps_dead_space () =
  let d = fresh_disk () in
  let idx =
    Index.build d cfg
      [ batch ~day:1 ~values:[ 1 ] ~per_value:4; batch ~day:2 ~values:[ 2 ] ~per_value:4 ]
  in
  (* Delete day 1: value 1's bucket drains, but value 2 still pins the
     shared extent, so its space stays allocated (dead space). *)
  let _ = Index.delete_days idx (fun day -> day = 1) in
  Alcotest.(check int) "entries" 4 (Index.entry_count idx);
  Alcotest.(check int) "dead space retained" 8 (Index.allocated_blocks idx);
  Alcotest.(check bool) "not packed" false (Index.is_packed idx);
  Index.validate idx;
  (* Deleting day 2 drains the shared extent entirely. *)
  let _ = Index.delete_days idx (fun day -> day = 2) in
  Alcotest.(check int) "all reclaimed" 0 (Index.allocated_blocks idx);
  Index.validate idx

(* ------------------------------------------------------------------ *)
(* Index: drop, copy, pack                                            *)
(* ------------------------------------------------------------------ *)

let test_drop_frees_everything () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [ batch ~day:1 ~values:[ 1; 2; 3 ] ~per_value:10 ] in
  Index.add_batch idx (batch ~day:2 ~values:[ 4 ] ~per_value:3);
  Disk.reset_counters d;
  Index.drop idx;
  Alcotest.(check int) "disk empty" 0 (Disk.live_blocks d);
  Alcotest.(check int) "index empty" 0 (Index.entry_count idx);
  (* Dropping is a constant-time unlink: no data transfer. *)
  Alcotest.(check int) "no transfer" 0 (Disk.counters d).Disk.blocks_read;
  Index.validate idx

let test_copy_packed () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [ batch ~day:1 ~values:[ 1; 2 ] ~per_value:3 ] in
  let dup = Index.copy idx in
  Alcotest.(check bool) "copy packed" true (Index.is_packed dup);
  check_entries "same contents" (Index.scan idx) (Index.scan dup);
  (* Mutating the copy must not affect the original. *)
  Index.add_batch dup (batch ~day:2 ~values:[ 1 ] ~per_value:1);
  Alcotest.(check int) "original untouched" 6 (Index.entry_count idx);
  Alcotest.(check int) "copy updated" 7 (Index.entry_count dup);
  Index.validate idx;
  Index.validate dup

let test_copy_unpacked_preserves_slack () =
  let d = fresh_disk () in
  let idx = Index.create_empty d cfg in
  Index.add_batch idx (batch ~day:1 ~values:[ 1; 2 ] ~per_value:3);
  let dup = Index.copy idx in
  Alcotest.(check bool) "copy unpacked" false (Index.is_packed dup);
  Alcotest.(check int) "same slack" (Index.allocated_blocks idx)
    (Index.allocated_blocks dup);
  check_entries "same contents" (Index.scan idx) (Index.scan dup);
  Index.validate dup

let test_pack_drops_and_merges () =
  let d = fresh_disk () in
  let idx =
    Index.build d cfg
      [ batch ~day:1 ~values:[ 1; 2 ] ~per_value:2; batch ~day:2 ~values:[ 2 ] ~per_value:2 ]
  in
  let packed =
    Index.pack idx ~drop_days:(fun day -> day = 1)
      ~extra:[ batch ~day:3 ~values:[ 2; 9 ] ~per_value:1 ]
  in
  Alcotest.(check bool) "packed result" true (Index.is_packed packed);
  Alcotest.(check int) "entries" 4 (Index.entry_count packed);
  Alcotest.(check (list int)) "days" [ 2; 3 ] (Index.days packed);
  Alcotest.(check int) "minimal alloc" 4 (Index.allocated_blocks packed);
  (* Source untouched. *)
  Alcotest.(check int) "source intact" 6 (Index.entry_count idx);
  Index.validate packed;
  Index.validate idx

let test_pack_all_expired () =
  let d = fresh_disk () in
  let idx = Index.build d cfg [ batch ~day:1 ~values:[ 1 ] ~per_value:5 ] in
  let packed = Index.pack idx ~drop_days:(fun _ -> true) ~extra:[] in
  Alcotest.(check int) "empty result" 0 (Index.entry_count packed);
  Alcotest.(check bool) "packed" true (Index.is_packed packed);
  Index.validate packed

(* ------------------------------------------------------------------ *)
(* Model-based property test                                          *)
(* ------------------------------------------------------------------ *)

(* Reference model: value -> entry list, mirroring adds/deletes/packs.
   After a random operation sequence, probes and scans must agree and
   the structural validator must pass. *)

type iop =
  | Add of int (* day seed *)
  | Delete of int (* day to expire *)
  | Pack_shadow of int
  | Copy_shadow

let gen_iops =
  QCheck2.Gen.(
    list_size (int_range 1 25)
      (frequency
         [
           (6, map (fun d -> Add d) (int_range 1 30));
           (3, map (fun d -> Delete d) (int_range 1 30));
           (1, map (fun d -> Pack_shadow d) (int_range 1 30));
           (1, return Copy_shadow);
         ]))

let prop_index_matches_model =
  QCheck2.Test.make ~name:"index matches reference model" ~count:120
    QCheck2.Gen.(pair small_int gen_iops)
    (fun (seed, ops) ->
      let prng = Wave_util.Prng.create seed in
      let d = fresh_disk () in
      let idx = ref (Index.create_empty d cfg) in
      let model : (int, Entry.t list) Hashtbl.t = Hashtbl.create 64 in
      let model_add (b : Entry.batch) =
        Array.iter
          (fun (p : Entry.posting) ->
            let old = Option.value ~default:[] (Hashtbl.find_opt model p.Entry.value) in
            Hashtbl.replace model p.Entry.value (old @ [ p.Entry.entry ]))
          b.Entry.postings
      in
      let model_delete pred =
        Hashtbl.iter
          (fun v es ->
            Hashtbl.replace model v
              (List.filter (fun (e : Entry.t) -> not (pred e.Entry.day)) es))
          (Hashtbl.copy model);
        Hashtbl.iter
          (fun v es -> if es = [] then Hashtbl.remove model v)
          (Hashtbl.copy model)
      in
      let mk_batch day =
        let values =
          List.init (1 + Wave_util.Prng.int prng 4) (fun _ ->
              1 + Wave_util.Prng.int prng 8)
          |> List.sort_uniq compare
        in
        batch ~day ~values ~per_value:(1 + Wave_util.Prng.int prng 3)
      in
      List.iter
        (fun op ->
          match op with
          | Add day ->
            let b = mk_batch day in
            Index.add_batch !idx b;
            model_add b
          | Delete day ->
            ignore (Index.delete_days !idx (fun d -> d = day));
            model_delete (fun d -> d = day)
          | Pack_shadow day ->
            let b = mk_batch day in
            let fresh = Index.pack !idx ~drop_days:(fun d -> d < day - 5) ~extra:[ b ] in
            Index.drop !idx;
            idx := fresh;
            model_delete (fun d -> d < day - 5);
            model_add b
          | Copy_shadow ->
            let dup = Index.copy !idx in
            Index.drop !idx;
            idx := dup)
        ops;
      Index.validate !idx;
      (* Compare every value's bucket. *)
      let ok = ref true in
      for v = 1 to 9 do
        let expect =
          Option.value ~default:[] (Hashtbl.find_opt model v) |> sorted_entries
        in
        let got = Index.probe !idx v |> sorted_entries in
        if not (List.equal Entry.equal expect got) then ok := false
      done;
      let model_total = Hashtbl.fold (fun _ es acc -> acc + List.length es) model 0 in
      if Index.entry_count !idx <> model_total then ok := false;
      if List.length (Index.scan !idx) <> model_total then ok := false;
      (* Disk accounting closes: the index is the only tenant. *)
      if Disk.live_blocks d <> Index.allocated_blocks !idx then ok := false;
      !ok)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "storage.entry",
      [
        Alcotest.test_case "batch day validation" `Quick test_batch_day_validation;
        Alcotest.test_case "group by value" `Quick test_group_by_value;
      ] );
    ( "storage.directory",
      [
        Alcotest.test_case "hash roundtrip" `Quick (directory_roundtrip Directory.Hash);
        Alcotest.test_case "bplus roundtrip" `Quick (directory_roundtrip Directory.Bplus);
      ] );
    ( "storage.index.build",
      [
        Alcotest.test_case "build empty" `Quick test_build_empty;
        Alcotest.test_case "build packed" `Quick test_build_packed;
        Alcotest.test_case "build multi day" `Quick test_build_multi_day;
        Alcotest.test_case "build write cost" `Quick test_build_write_cost;
        Alcotest.test_case "build cpu charge" `Quick test_build_cpu_charge;
        Alcotest.test_case "disk mismatch raises" `Quick test_disk_mismatch_raises;
      ] );
    ( "storage.index.query",
      [
        Alcotest.test_case "probe contents" `Quick test_probe_contents;
        Alcotest.test_case "probe cost" `Quick test_probe_cost;
        Alcotest.test_case "probe timed" `Quick test_probe_timed;
        Alcotest.test_case "scan packed cost" `Quick test_scan_packed_cost;
        Alcotest.test_case "scan unpacked pays slack" `Quick
          test_scan_unpacked_pays_slack;
        Alcotest.test_case "scan timed" `Quick test_scan_timed;
      ] );
    ( "storage.index.add",
      [
        Alcotest.test_case "add to empty" `Quick test_add_to_empty;
        Alcotest.test_case "growth respects g" `Quick test_add_growth_respects_g;
        Alcotest.test_case "append cost" `Quick test_add_in_place_append_cost;
        Alcotest.test_case "relocation cost" `Quick test_add_relocation_cost;
        Alcotest.test_case "add to packed unpacks" `Quick test_add_to_packed_unpacks;
      ] );
    ( "storage.index.delete",
      [
        Alcotest.test_case "delete days" `Quick test_delete_days;
        Alcotest.test_case "delete nothing" `Quick test_delete_nothing;
        Alcotest.test_case "delete shrinks" `Quick test_delete_shrinks;
        Alcotest.test_case "shared dead space" `Quick
          test_delete_from_shared_keeps_dead_space;
      ] );
    ( "storage.index.shadow",
      [
        Alcotest.test_case "drop frees everything" `Quick test_drop_frees_everything;
        Alcotest.test_case "copy packed" `Quick test_copy_packed;
        Alcotest.test_case "copy unpacked preserves slack" `Quick
          test_copy_unpacked_preserves_slack;
        Alcotest.test_case "pack drops and merges" `Quick test_pack_drops_and_merges;
        Alcotest.test_case "pack all expired" `Quick test_pack_all_expired;
      ]
      @ qcheck [ prop_index_matches_model ] );
  ]
