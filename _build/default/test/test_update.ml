(* Direct tests of the Update operations (the paper's BuildIndex /
   AddToIndex / DeleteFromIndex under each technique), plus consistency
   properties relating probes and scans, and multi-disk round-robin
   placement. *)

open Wave_core
open Wave_storage

let store day =
  Entry.batch_create ~day
    (Array.init 7 (fun i ->
         {
           Entry.value = 1 + ((day + (2 * i)) mod 5);
           entry = { Entry.rid = (day * 100) + i; day; info = i };
         }))

let env technique = Env.create ~technique ~store ~w:8 ~n:2 ()

let sorted es = List.sort Entry.compare es

(* All three techniques produce semantically identical indexes from the
   same operation sequence; only layout and cost differ. *)
let test_update_semantic_equivalence () =
  let run technique =
    let env = env technique in
    let idx = Update.build_days env [ 1; 2; 3 ] in
    let idx = Update.add_days env idx [ 4; 5 ] in
    let idx = Update.delete_days env idx (fun d -> d <= 2) in
    let idx = Update.replace_days env idx ~expire:(fun d -> d = 3) ~add:[ 6 ] in
    Index.validate idx;
    (sorted (Index.scan idx), Index.days idx, Index.is_packed idx)
  in
  let ip, ip_days, ip_packed = run Env.In_place in
  let ss, ss_days, ss_packed = run Env.Simple_shadow in
  let ps, ps_days, ps_packed = run Env.Packed_shadow in
  Alcotest.(check (list int)) "days" [ 4; 5; 6 ] ip_days;
  Alcotest.(check bool) "ip = ss" true (List.equal Entry.equal ip ss);
  Alcotest.(check bool) "ip = ps" true (List.equal Entry.equal ip ps);
  Alcotest.(check bool) "same day sets" true (ip_days = ss_days && ss_days = ps_days);
  (* layouts differ exactly as the paper says *)
  Alcotest.(check bool) "in-place unpacked" false ip_packed;
  Alcotest.(check bool) "simple shadow unpacked" false ss_packed;
  Alcotest.(check bool) "packed shadow packed" true ps_packed

let test_update_build_always_packed () =
  List.iter
    (fun technique ->
      let idx = Update.build_days (env technique) [ 1; 2 ] in
      Alcotest.(check bool) "packed" true (Index.is_packed idx))
    [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ]

let test_prepare_add_no_deletes_needed () =
  (* prepare_add works even under the legacy constraint. *)
  let env =
    Env.create ~technique:Env.Simple_shadow ~allow_deletes:false ~store ~w:8
      ~n:2 ()
  in
  let idx = Update.build_days env [ 1 ] in
  let pending = Update.prepare_add env idx in
  let idx = Update.complete_replace env pending ~add:[ 2 ] in
  Alcotest.(check (list int)) "days" [ 1; 2 ] (Index.days idx)

let test_prepare_replace_respects_legacy () =
  let env =
    Env.create ~technique:Env.In_place ~allow_deletes:false ~store ~w:8 ~n:2 ()
  in
  let idx = Update.build_days env [ 1 ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Update.prepare_replace env idx ~expire:(fun d -> d = 1));
       false
     with Update.Deletes_not_supported _ -> true)

(* Scan must equal the concatenation of probes over every live value. *)
let prop_scan_equals_probes =
  QCheck2.Test.make ~name:"scan = union of probes" ~count:60
    QCheck2.Gen.(pair (int_range 0 2) (int_range 8 16))
    (fun (tech_i, w) ->
      let technique =
        List.nth [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ] tech_i
      in
      let env = Env.create ~technique ~store ~w ~n:2 () in
      let s = Scheme.start Scheme.Del env in
      Scheme.advance_to s (w + 5);
      let frame = Scheme.frame s in
      let by_scan = sorted (Frame.segment_scan frame) in
      let by_probes =
        List.concat_map
          (fun v -> Frame.index_probe frame ~value:v)
          [ 1; 2; 3; 4; 5 ]
        |> sorted
      in
      List.equal Entry.equal by_scan by_probes)

(* Timed probes partition by day ranges. *)
let prop_timed_probe_partitions =
  QCheck2.Test.make ~name:"timed probes partition the window" ~count:60
    QCheck2.Gen.(pair (int_range 8 14) (int_range 1 5))
    (fun (w, v) ->
      let env = Env.create ~store ~w ~n:3 () in
      let s = Scheme.start Scheme.Wata_star env in
      Scheme.advance_to s (w + 6);
      let d = Scheme.current_day s in
      let frame = Scheme.frame s in
      let mid = d - (w / 2) in
      let left = Frame.timed_index_probe frame ~t1:(d - w + 1) ~t2:mid ~value:v in
      let right = Frame.timed_index_probe frame ~t1:(mid + 1) ~t2:d ~value:v in
      let whole = Frame.timed_index_probe frame ~t1:(d - w + 1) ~t2:d ~value:v in
      List.length left + List.length right = List.length whole
      && List.equal Entry.equal (sorted (left @ right)) (sorted whole))

(* Multi-disk: more constituents than disks -> round-robin placement
   still covers the window and still beats one disk. *)
let test_multidisk_round_robin () =
  let m = Wave_sim.Multi_disk.create ~store ~w:12 ~n:6 ~disks:2 () in
  Alcotest.(check int) "disks" 2 (Wave_sim.Multi_disk.n_disks m);
  Alcotest.(check int) "constituents" 6 (Wave_sim.Multi_disk.n_constituents m);
  for _ = 1 to 6 do
    ignore (Wave_sim.Multi_disk.advance m)
  done;
  let entries, t = Wave_sim.Multi_disk.scan m in
  let days =
    List.sort_uniq compare (List.map (fun (e : Entry.t) -> e.Entry.day) entries)
  in
  Alcotest.(check int) "12 days covered" 12 (List.length days);
  Alcotest.(check bool) "some parallelism" true
    (t.Wave_sim.Multi_disk.serial > 1.2 *. t.Wave_sim.Multi_disk.parallel)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "core.update",
      [
        Alcotest.test_case "semantic equivalence" `Quick
          test_update_semantic_equivalence;
        Alcotest.test_case "build always packed" `Quick test_update_build_always_packed;
        Alcotest.test_case "prepare_add under legacy" `Quick
          test_prepare_add_no_deletes_needed;
        Alcotest.test_case "prepare_replace respects legacy" `Quick
          test_prepare_replace_respects_legacy;
      ]
      @ qcheck [ prop_scan_equals_probes; prop_timed_probe_partitions ] );
    ( "ext.multidisk_rr",
      [ Alcotest.test_case "round robin" `Quick test_multidisk_round_robin ] );
  ]
