(* Simulation-harness tests: end-to-end runs over realistic workloads,
   cross-scheme agreement of simulated trends with the analytic model's
   qualitative claims, and the size-only WATA replay used by Figure 11
   and Theorem 3. *)

open Wave_core
open Wave_sim

let small_netnews =
  Wave_workload.Netnews.store
    { Wave_workload.Netnews.default_config with Wave_workload.Netnews.mean_postings = 120 }

let run ?(technique = Env.In_place) ?queries ?(run_days = 21) scheme ~w ~n =
  Runner.run
    {
      (Runner.default_config ~scheme ~store:small_netnews ~w ~n) with
      Runner.technique;
      queries;
      run_days;
    }

let test_runner_basic () =
  let r = run Scheme.Del ~w:7 ~n:2 in
  Alcotest.(check int) "21 days recorded" 21 (List.length r.Runner.days);
  Alcotest.(check bool) "maintenance happened" true
    (r.Runner.total_maintenance_seconds > 0.0);
  List.iter
    (fun d ->
      if d.Runner.wave_length <> 7 then
        Alcotest.failf "hard window violated on day %d" d.Runner.day)
    r.Runner.days

let test_runner_all_schemes_all_techniques () =
  List.iter
    (fun scheme ->
      List.iter
        (fun technique ->
          let n = max 2 (Scheme.min_indexes scheme) in
          let r = run ~technique scheme ~w:7 ~n in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s ran" (Scheme.name scheme)
               (Env.technique_name technique))
            true
            (r.Runner.total_work_seconds > 0.0))
        [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ])
    Scheme.all

let test_runner_queries_charged () =
  let spec =
    { Wave_workload.Query_gen.scam_spec with Wave_workload.Query_gen.probes_per_day = 25 }
  in
  let r = run ~queries:spec Scheme.Del ~w:7 ~n:2 in
  Alcotest.(check bool) "query time recorded" true (r.Runner.total_query_seconds > 0.0);
  let some_hits =
    List.exists (fun d -> d.Runner.probe_entries > 0) r.Runner.days
  in
  Alcotest.(check bool) "probes return entries" true some_hits

(* Simulated trend: REINDEX++'s measured transition is far smaller than
   its full maintenance (the ladder runs after the swap), while
   REINDEX's transition IS its maintenance. *)
let test_sim_transition_vs_maintenance () =
  let rpp = run Scheme.Reindex_pp ~w:12 ~n:2 ~run_days:24 in
  let avg f rs =
    List.fold_left (fun a d -> a +. f d) 0.0 rs.Runner.days
    /. float_of_int (List.length rs.Runner.days)
  in
  let t_pp = avg (fun d -> d.Runner.transition_seconds) rpp in
  let m_pp = avg (fun d -> d.Runner.maintenance_seconds) rpp in
  Alcotest.(check bool)
    (Printf.sprintf "transition %.4f << maintenance %.4f" t_pp m_pp)
    true
    (t_pp < 0.5 *. m_pp);
  let r = run Scheme.Reindex ~w:12 ~n:2 ~run_days:24 in
  let t_r = avg (fun d -> d.Runner.transition_seconds) r in
  let m_r = avg (fun d -> d.Runner.maintenance_seconds) r in
  Alcotest.(check bool) "REINDEX transition ~ maintenance" true
    (t_r > 0.9 *. m_r)

(* Simulated trend: packed shadowing keeps constituents packed, so its
   steady-state space is below in-place updating's CONTIGUOUS slack. *)
let test_sim_packed_space_smaller () =
  let ip = run ~technique:Env.In_place Scheme.Del ~w:7 ~n:2 in
  let ps = run ~technique:Env.Packed_shadow Scheme.Del ~w:7 ~n:2 in
  Alcotest.(check bool)
    (Printf.sprintf "packed avg space %.0f < in-place %.0f" ps.Runner.avg_space_bytes
       ip.Runner.avg_space_bytes)
    true
    (ps.Runner.avg_space_bytes < ip.Runner.avg_space_bytes)

(* Simulated trend: WATA holds more than the window (soft), REINDEX
   exactly the window. *)
let test_sim_wata_length () =
  let wata = run Scheme.Wata_star ~w:7 ~n:3 ~run_days:30 in
  let exceeds = List.exists (fun d -> d.Runner.wave_length > 7) wata.Runner.days in
  Alcotest.(check bool) "soft window observed" true exceeds;
  let bound = Wata.length_bound ~w:7 ~n:3 in
  List.iter
    (fun d ->
      if d.Runner.wave_length > bound then
        Alcotest.failf "length %d beyond Theorem 2 bound" d.Runner.wave_length)
    wata.Runner.days

(* --- Wata_size (Figure 11 / Theorem 3) ---------------------------- *)

let test_window_max () =
  Alcotest.(check int) "sliding max" 9
    (Wata_size.window_max ~w:2 ~sizes:[| 1; 2; 4; 5; 3 |])

let test_replay_uniform_sizes () =
  (* Uniform volumes: size ratio equals length ratio = bound / w. *)
  let w = 7 and n = 4 in
  let sizes = Array.make 100 10 in
  let s = Wata_size.replay ~w ~n ~sizes in
  Alcotest.(check int) "length bound attained" (Wata.length_bound ~w ~n)
    s.Wata_size.wata_max_length;
  let expected = float_of_int (Wata.length_bound ~w ~n) /. float_of_int w in
  Alcotest.(check (float 1e-9)) "ratio = bound/w" expected s.Wata_size.ratio

let test_replay_matches_real_scheme () =
  (* The symbolic replay must agree with the real WATA* implementation
     on the days held. *)
  let cfg = { Wave_workload.Netnews.default_config with Wave_workload.Netnews.mean_postings = 60 } in
  let store = Wave_workload.Netnews.store cfg in
  let w = 7 and n = 3 in
  let env = Env.create ~store ~w ~n () in
  let s = Scheme.start Scheme.Wata_star env in
  let sizes = Array.init 40 (fun i -> Wave_workload.Netnews.daily_volume cfg (i + 1)) in
  let replay_max = (Wata_size.replay ~w ~n ~sizes).Wata_size.wata_max_length in
  let real_max = ref (Frame.length (Scheme.frame s)) in
  for _ = 1 to 40 - w do
    Scheme.transition s;
    real_max := max !real_max (Frame.length (Scheme.frame s))
  done;
  Alcotest.(check int) "same max length" replay_max !real_max

let test_theorem3_competitive_ratio () =
  (* Ratio <= 2 on seasonal and adversarial traces (Theorem 3). *)
  let check name sizes =
    List.iter
      (fun (w, n) ->
        if Array.length sizes >= w then begin
          let s = Wata_size.replay ~w ~n ~sizes in
          if s.Wata_size.ratio > 2.0 +. 1e-9 then
            Alcotest.failf "%s: ratio %.3f > 2 at w=%d n=%d" name s.Wata_size.ratio w n
        end)
      [ (7, 2); (7, 4); (14, 3); (30, 5); (10, 10) ]
  in
  let cfg = { Wave_workload.Netnews.default_config with Wave_workload.Netnews.mean_postings = 1000 } in
  check "seasonal"
    (Array.init 200 (fun i -> Wave_workload.Netnews.daily_volume cfg (i + 1)));
  (* Adversarial: one giant day inside tiny ones. *)
  check "spike" (Array.init 120 (fun i -> if i mod 37 = 0 then 100_000 else 10));
  check "ramp" (Array.init 120 (fun i -> 1 + (i * i)));
  check "alternating" (Array.init 120 (fun i -> if i mod 2 = 0 then 1 else 1000))

let prop_theorem3_random_traces =
  QCheck2.Test.make ~name:"Theorem 3: ratio <= 2 on random traces" ~count:100
    QCheck2.Gen.(
      triple (int_range 4 16) (int_range 2 6)
        (array_size (int_range 30 80) (int_range 1 10_000)))
    (fun (w, n, sizes) ->
      QCheck2.assume (n <= w && Array.length sizes >= w);
      let s = Wata_size.replay ~w ~n ~sizes in
      s.Wata_size.ratio <= 2.0 +. 1e-9)

let test_figure11_shape () =
  (* W = 7 over 200 days of seasonal Usenet volumes: ratio tolerable
     (<= 1.6) and broadly decreasing in n — the paper's Figure 11. *)
  let cfg = { Wave_workload.Netnews.default_config with Wave_workload.Netnews.mean_postings = 70_000 } in
  let sizes = Array.init 200 (fun i -> Wave_workload.Netnews.daily_volume cfg (i + 1)) in
  let ratio n = (Wata_size.replay ~w:7 ~n ~sizes).Wata_size.ratio in
  let r2 = ratio 2 and r4 = ratio 4 and r7 = ratio 7 in
  (* The paper reports <= 1.6 on its 1997 trace with 1.24 at n = 4; on
     our synthetic trace the exact values differ slightly but must stay
     within Theorem 3's bound, sit near the paper's at n = 4, and
     decrease with n. *)
  Alcotest.(check bool)
    (Printf.sprintf "ratios (%.2f, %.2f, %.2f) <= 2" r2 r4 r7)
    true
    (r2 <= 2.0 && r4 <= 2.0 && r7 <= 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "n=4 ratio %.2f near paper's 1.24" r4)
    true
    (r4 >= 1.05 && r4 <= 1.45);
  Alcotest.(check bool) "decreasing in n" true (r7 <= r4 && r4 <= r2);
  Alcotest.(check bool) "overhead exists" true (r2 > 1.0)

(* --- Soak tests ----------------------------------------------------- *)

(* Long runs with continuous validation: 150 days for every scheme on
   the seasonal Netnews workload. *)
let soak kind () =
  let r =
    Runner.run
      {
        (Runner.default_config ~scheme:kind ~store:small_netnews ~w:14
           ~n:(max 3 (Scheme.min_indexes kind))) with
        Runner.run_days = 150;
        technique = Env.Packed_shadow;
      }
  in
  Alcotest.(check int) "150 days" 150 (List.length r.Runner.days)

let soak_cases =
  List.map
    (fun kind ->
      Alcotest.test_case (Printf.sprintf "soak %s" (Scheme.name kind)) `Slow
        (soak kind))
    Scheme.all

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "sim.runner",
      [
        Alcotest.test_case "basic run" `Quick test_runner_basic;
        Alcotest.test_case "all schemes x techniques" `Slow
          test_runner_all_schemes_all_techniques;
        Alcotest.test_case "queries charged" `Quick test_runner_queries_charged;
        Alcotest.test_case "transition vs maintenance" `Quick
          test_sim_transition_vs_maintenance;
        Alcotest.test_case "packed space smaller" `Quick test_sim_packed_space_smaller;
        Alcotest.test_case "wata length" `Quick test_sim_wata_length;
      ] );
    ( "sim.wata_size",
      [
        Alcotest.test_case "window max" `Quick test_window_max;
        Alcotest.test_case "uniform sizes" `Quick test_replay_uniform_sizes;
        Alcotest.test_case "replay matches real scheme" `Quick
          test_replay_matches_real_scheme;
        Alcotest.test_case "theorem 3 traces" `Quick test_theorem3_competitive_ratio;
        Alcotest.test_case "figure 11 shape" `Quick test_figure11_shape;
      ]
      @ qcheck [ prop_theorem3_random_traces ] );
    ("sim.soak", soak_cases);
  ]

