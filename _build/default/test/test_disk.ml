(* Tests for the simulated-disk substrate: allocator invariants, cost
   accounting against the seek/transfer model, and error protocol. *)

open Wave_disk

let params = { Disk.seek_time = 0.01; transfer_rate = 1e6; block_size = 1000 }
(* With these numbers one block transfers in exactly 1 ms, so expected
   elapsed times are easy to state in tests. *)

let fresh () = Disk.create ~params ()
let check_float = Alcotest.(check (float 1e-9))

let test_alloc_basic () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:10 in
  Alcotest.(check int) "live" 10 (Disk.live_blocks d);
  Alcotest.(check bool) "is live" true (Disk.is_live d e);
  Disk.free d e;
  Alcotest.(check int) "live after free" 0 (Disk.live_blocks d);
  Alcotest.(check bool) "not live" false (Disk.is_live d e)

let test_alloc_non_positive () =
  let d = fresh () in
  Alcotest.check_raises "zero" (Disk.Disk_error "alloc: non-positive size")
    (fun () -> ignore (Disk.alloc d ~blocks:0))

let test_double_free () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:4 in
  Disk.free d e;
  Alcotest.check_raises "double free" (Disk.Disk_error "extent is not live")
    (fun () -> Disk.free d e)

let test_extents_disjoint () =
  let d = fresh () in
  let es = List.init 50 (fun i -> Disk.alloc d ~blocks:(1 + (i mod 7))) in
  let ranges =
    List.map (fun (e : Disk.extent) -> (e.start, e.start + e.length)) es
  in
  let sorted = List.sort compare ranges in
  let rec disjoint = function
    | (_, hi) :: ((lo, _) :: _ as rest) -> hi <= lo && disjoint rest
    | _ -> true
  in
  Alcotest.(check bool) "no overlap" true (disjoint sorted)

let test_free_reuses_space () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:8 in
  let hw1 = Disk.high_water d in
  Disk.free d e1;
  let e2 = Disk.alloc d ~blocks:8 in
  Alcotest.(check int) "frontier unchanged" hw1 (Disk.high_water d);
  Alcotest.(check int) "same start reused" e1.Disk.start e2.Disk.start

let test_coalescing () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:5 in
  let e2 = Disk.alloc d ~blocks:5 in
  let e3 = Disk.alloc d ~blocks:5 in
  (* Free in an order that requires both-side merging for the middle. *)
  Disk.free d e1;
  Disk.free d e3;
  Disk.free d e2;
  let big = Disk.alloc d ~blocks:15 in
  Alcotest.(check int) "coalesced hole fits 15" 0 big.Disk.start;
  Alcotest.(check int) "frontier unchanged" 15 (Disk.high_water d)

let test_first_fit_skips_small_holes () =
  let d = fresh () in
  let small = Disk.alloc d ~blocks:2 in
  let _keep = Disk.alloc d ~blocks:10 in
  Disk.free d small;
  let e = Disk.alloc d ~blocks:5 in
  (* The 2-block hole cannot hold 5 blocks, so we extend the frontier. *)
  Alcotest.(check int) "allocated past frontier" 12 e.Disk.start

let test_peak_tracking () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:10 in
  let e2 = Disk.alloc d ~blocks:20 in
  Disk.free d e1;
  Disk.free d e2;
  Alcotest.(check int) "peak is 30" 30 (Disk.peak_blocks d);
  Alcotest.(check int) "live is 0" 0 (Disk.live_blocks d);
  Disk.reset_peak d;
  Alcotest.(check int) "peak reset" 0 (Disk.peak_blocks d)

let test_read_costs () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:10 in
  Disk.read d e;
  (* one seek (10 ms) + 10 blocks x 1 ms *)
  check_float "elapsed" 0.02 (Disk.elapsed d);
  let c = Disk.counters d in
  Alcotest.(check int) "seeks" 1 c.Disk.seeks;
  Alcotest.(check int) "blocks read" 10 c.Disk.blocks_read

let test_partial_read_costs () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:10 in
  Disk.read_blocks d e ~blocks:3;
  check_float "elapsed" 0.013 (Disk.elapsed d)

let test_partial_read_bounds () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:10 in
  Alcotest.check_raises "over-read"
    (Disk.Disk_error "read_blocks: out of extent bounds") (fun () ->
      Disk.read_blocks d e ~blocks:11)

let test_write_costs () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:5 in
  Disk.write d e;
  check_float "elapsed" 0.015 (Disk.elapsed d);
  Alcotest.(check int) "blocks written" 5 (Disk.counters d).Disk.blocks_written

let test_sequential_scan_single_seek () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:4 in
  let e2 = Disk.alloc d ~blocks:6 in
  Disk.sequential_read d [ e1; e2 ];
  let c = Disk.counters d in
  Alcotest.(check int) "one seek" 1 c.Disk.seeks;
  check_float "elapsed" 0.02 (Disk.elapsed d)

let test_read_dead_extent () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:3 in
  Disk.free d e;
  Alcotest.check_raises "read freed" (Disk.Disk_error "extent is not live")
    (fun () -> Disk.read d e)

let test_reset_counters_keeps_allocation () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:6 in
  Disk.read d e;
  Disk.reset_counters d;
  check_float "elapsed zero" 0.0 (Disk.elapsed d);
  Alcotest.(check int) "still live" 6 (Disk.live_blocks d);
  Disk.read d e (* still readable *)

let test_fragmentation () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:10 in
  let _e2 = Disk.alloc d ~blocks:10 in
  Disk.free d e1;
  check_float "half free" 0.5 (Disk.fragmentation d)

(* Property: a random interleaving of allocs and frees never violates
   disjointness, never loses blocks, and live accounting matches the sum
   of live extent sizes. *)
let prop_allocator_consistent =
  QCheck2.Test.make ~name:"allocator random workout" ~count:200
    QCheck2.Gen.(pair small_int (list_size (int_range 1 120) (int_range 1 16)))
    (fun (seed, sizes) ->
      let prng = Wave_util.Prng.create seed in
      let d = fresh () in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun size ->
          (* Randomly free one live extent before (maybe) allocating. *)
          (match !live with
          | [] -> ()
          | es when Wave_util.Prng.bool prng ->
            let i = Wave_util.Prng.int prng (List.length es) in
            let e = List.nth es i in
            Disk.free d e;
            live := List.filteri (fun j _ -> j <> i) es
          | _ -> ());
          let e = Disk.alloc d ~blocks:size in
          live := e :: !live;
          (* Accounting check. *)
          let sum =
            List.fold_left (fun acc (e : Disk.extent) -> acc + e.length) 0 !live
          in
          if sum <> Disk.live_blocks d then ok := false;
          (* Disjointness check. *)
          let ranges =
            List.sort compare
              (List.map
                 (fun (e : Disk.extent) -> (e.Disk.start, e.Disk.start + e.Disk.length))
                 !live)
          in
          let rec disjoint = function
            | (_, hi) :: ((lo, _) :: _ as rest) -> hi <= lo && disjoint rest
            | _ -> true
          in
          if not (disjoint ranges) then ok := false)
        sizes;
      !ok)

let prop_free_all_returns_to_empty =
  QCheck2.Test.make ~name:"free all -> one coalesced hole" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 1 12))
    (fun sizes ->
      let d = fresh () in
      let es = List.map (fun b -> Disk.alloc d ~blocks:b) sizes in
      List.iter (Disk.free d) es;
      (* After freeing everything, an allocation the size of the whole
         high-water region must fit at offset 0: the free list coalesced. *)
      let hw = Disk.high_water d in
      let e = Disk.alloc d ~blocks:hw in
      e.Disk.start = 0 && Disk.high_water d = hw)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "disk.allocator",
      [
        Alcotest.test_case "alloc/free basic" `Quick test_alloc_basic;
        Alcotest.test_case "non-positive alloc" `Quick test_alloc_non_positive;
        Alcotest.test_case "double free" `Quick test_double_free;
        Alcotest.test_case "extents disjoint" `Quick test_extents_disjoint;
        Alcotest.test_case "free reuses space" `Quick test_free_reuses_space;
        Alcotest.test_case "coalescing" `Quick test_coalescing;
        Alcotest.test_case "first fit skips small holes" `Quick
          test_first_fit_skips_small_holes;
        Alcotest.test_case "peak tracking" `Quick test_peak_tracking;
        Alcotest.test_case "fragmentation" `Quick test_fragmentation;
      ]
      @ qcheck [ prop_allocator_consistent; prop_free_all_returns_to_empty ] );
    ( "disk.costs",
      [
        Alcotest.test_case "read costs" `Quick test_read_costs;
        Alcotest.test_case "partial read costs" `Quick test_partial_read_costs;
        Alcotest.test_case "partial read bounds" `Quick test_partial_read_bounds;
        Alcotest.test_case "write costs" `Quick test_write_costs;
        Alcotest.test_case "sequential scan single seek" `Quick
          test_sequential_scan_single_seek;
        Alcotest.test_case "read dead extent" `Quick test_read_dead_extent;
        Alcotest.test_case "reset keeps allocation" `Quick
          test_reset_counters_keeps_allocation;
      ] );
  ]
