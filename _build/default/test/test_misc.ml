(* Edge-case coverage: frame operations, index corner cases, hash vs
   B+tree directory parity inside full scheme runs, manifest-driven
   CLI-level flows. *)

open Wave_core
open Wave_storage

let store day =
  Entry.batch_create ~day
    (Array.init 6 (fun i ->
         {
           Entry.value = 1 + ((day * (i + 1)) mod 7);
           entry = { Entry.rid = (day * 100) + i; day; info = i };
         }))

(* --- Frame ---------------------------------------------------------- *)

let test_frame_find_slot_missing () =
  let env = Env.create ~store ~w:4 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  Alcotest.check_raises "missing day" Not_found (fun () ->
      ignore (Frame.find_slot_with_day (Scheme.frame s) 99))

let test_frame_covered_and_length () =
  let env = Env.create ~store ~w:6 ~n:3 () in
  let s = Scheme.start Scheme.Del env in
  let f = Scheme.frame s in
  Alcotest.(check int) "length" 6 (Frame.length f);
  Alcotest.(check bool) "covered = 1..6" true
    (Dayset.equal (Frame.covered_days f) (Dayset.range 1 6))

let test_frame_slot_bounds () =
  let env = Env.create ~store ~w:4 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  Alcotest.check_raises "slot 0" (Invalid_argument "Frame: slot 0 out of range")
    (fun () -> ignore (Frame.slot_index (Scheme.frame s) 0));
  Alcotest.check_raises "slot 3" (Invalid_argument "Frame: slot 3 out of range")
    (fun () -> ignore (Frame.slot_index (Scheme.frame s) 3))

let test_probe_outside_window_empty () =
  let env = Env.create ~store ~w:4 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  Alcotest.(check (list int)) "no hits before day 1" []
    (List.map
       (fun (e : Entry.t) -> e.Entry.rid)
       (Frame.timed_index_probe (Scheme.frame s) ~t1:(-5) ~t2:0 ~value:1))

(* --- Index corner cases --------------------------------------------- *)

let cfg = Index.default_config

let test_empty_index_queries () =
  let d = Index.make_disk cfg in
  let idx = Index.create_empty d cfg in
  Alcotest.(check (list int)) "probe empty" []
    (List.map (fun (e : Entry.t) -> e.Entry.rid) (Index.probe idx 1));
  Alcotest.(check int) "scan empty" 0 (List.length (Index.scan idx));
  Alcotest.(check (list int)) "days empty" [] (Index.days idx);
  Index.validate idx

let test_index_config_validation () =
  let bad g = { cfg with Index.growth_factor = g } in
  Alcotest.(check bool) "g = 1.0 rejected" true
    (try
       ignore (Index.create_empty (Index.make_disk cfg) (bad 1.0));
       false
     with Index.Index_error _ -> true);
  let bad_min = { cfg with Index.min_alloc_entries = 0 } in
  Alcotest.(check bool) "min_alloc 0 rejected" true
    (try
       ignore (Index.create_empty (Index.make_disk cfg) bad_min);
       false
     with Index.Index_error _ -> true)

let test_add_empty_batch () =
  let d = Index.make_disk cfg in
  let idx = Index.create_empty d cfg in
  Index.add_batch idx (Entry.batch_create ~day:1 [||]);
  Alcotest.(check int) "still empty" 0 (Index.entry_count idx);
  Alcotest.(check bool) "still packed" true (Index.is_packed idx);
  Index.validate idx

let test_copy_empty_index () =
  let d = Index.make_disk cfg in
  let idx = Index.create_empty d cfg in
  let dup = Index.copy idx in
  Alcotest.(check int) "copy empty" 0 (Index.entry_count dup);
  Index.validate dup

(* --- Hash directory end-to-end -------------------------------------- *)

let test_hash_directory_schemes () =
  (* Full scheme runs with the hash directory must agree with the
     B+tree directory on every windowed query. *)
  let run dir_kind =
    let icfg = { cfg with Index.dir_kind } in
    let env = Env.create ~icfg ~store ~w:6 ~n:3 () in
    let s = Scheme.start Scheme.Reindex_pp env in
    Scheme.advance_to s 15;
    Scheme.check_window_invariant s;
    List.sort Entry.compare
      (Frame.timed_segment_scan (Scheme.frame s) ~t1:10 ~t2:15)
  in
  let bplus = run Directory.Bplus and hash = run Directory.Hash in
  Alcotest.(check bool) "identical results" true
    (List.equal Entry.equal bplus hash)

(* --- Scheme misc ----------------------------------------------------- *)

let test_last_total_seconds_positive () =
  let env = Env.create ~store ~w:6 ~n:2 () in
  let s = Scheme.start Scheme.Reindex env in
  Scheme.transition s;
  Alcotest.(check bool) "total > 0" true (Scheme.last_total_seconds s > 0.0);
  Alcotest.(check bool) "transition <= total" true
    (Scheme.last_transition_seconds s <= Scheme.last_total_seconds s +. 1e-9)

let test_window_function () =
  let env = Env.create ~store ~w:5 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  Scheme.advance_to s 12;
  Alcotest.(check (list int)) "window 8..12" [ 8; 9; 10; 11; 12 ]
    (Dayset.elements (Scheme.window s))

let suites =
  [
    ( "misc.frame",
      [
        Alcotest.test_case "find_slot missing" `Quick test_frame_find_slot_missing;
        Alcotest.test_case "covered and length" `Quick test_frame_covered_and_length;
        Alcotest.test_case "slot bounds" `Quick test_frame_slot_bounds;
        Alcotest.test_case "probe outside window" `Quick test_probe_outside_window_empty;
      ] );
    ( "misc.index",
      [
        Alcotest.test_case "empty index queries" `Quick test_empty_index_queries;
        Alcotest.test_case "config validation" `Quick test_index_config_validation;
        Alcotest.test_case "add empty batch" `Quick test_add_empty_batch;
        Alcotest.test_case "copy empty" `Quick test_copy_empty_index;
      ] );
    ( "misc.directory",
      [ Alcotest.test_case "hash directory schemes" `Quick test_hash_directory_schemes ] );
    ( "misc.scheme",
      [
        Alcotest.test_case "total seconds" `Quick test_last_total_seconds_positive;
        Alcotest.test_case "window" `Quick test_window_function;
      ] );
  ]
