(* Core wave-index tests: the paper's example tables reproduced
   transition-by-transition (golden traces), window invariants for all
   six schemes under all three update techniques, cross-scheme query
   equivalence, and disk-space accounting. *)

open Wave_core
open Wave_storage

(* Deterministic day store for tests: each day produces [per_day]
   postings over a small value universe, derived from the day number. *)
let make_store ?(values = 10) ?(per_day = 6) () =
  let cache = Hashtbl.create 64 in
  fun day ->
    match Hashtbl.find_opt cache day with
    | Some b -> b
    | None ->
      let prng = Wave_util.Prng.create ((day * 7919) + 17) in
      let postings =
        Array.init per_day (fun i ->
            {
              Entry.value = 1 + Wave_util.Prng.int prng values;
              entry = { Entry.rid = (day * 1000) + i; day; info = i };
            })
      in
      let b = Entry.batch_create ~day postings in
      Hashtbl.add cache day b;
      b

let make_env ?(technique = Env.In_place) ~w ~n () =
  Env.create ~technique ~store:(make_store ()) ~w ~n ()

(* ------------------------------------------------------------------ *)
(* Split                                                              *)
(* ------------------------------------------------------------------ *)

let test_split_even () =
  Alcotest.(check (list (pair int int)))
    "10 over 2"
    [ (1, 5); (6, 10) ]
    (Split.contiguous ~first_day:1 ~days:10 ~parts:2)

let test_split_uneven () =
  Alcotest.(check (list int)) "10 over 4" [ 3; 3; 2; 2 ] (Split.sizes ~days:10 ~parts:4);
  Alcotest.(check (list (pair int int)))
    "ranges"
    [ (1, 3); (4, 6); (7, 8); (9, 10) ]
    (Split.contiguous ~first_day:1 ~days:10 ~parts:4)

let test_split_singletons () =
  Alcotest.(check (list int)) "5 over 5" [ 1; 1; 1; 1; 1 ] (Split.sizes ~days:5 ~parts:5)

let prop_split_covers =
  QCheck2.Test.make ~name:"split covers range exactly" ~count:300
    QCheck2.Gen.(pair (int_range 1 60) (int_range 1 60))
    (fun (days, parts) ->
      QCheck2.assume (parts <= days);
      let ranges = Split.contiguous ~first_day:1 ~days ~parts in
      let covered =
        List.concat_map (fun (lo, hi) -> List.init (hi - lo + 1) (fun k -> lo + k)) ranges
      in
      covered = List.init days (fun i -> i + 1)
      && List.length ranges = parts
      &&
      let sizes = List.map (fun (lo, hi) -> hi - lo + 1) ranges in
      List.for_all (fun s -> abs (s - (days / parts)) <= 1) sizes)

(* ------------------------------------------------------------------ *)
(* Dayset                                                             *)
(* ------------------------------------------------------------------ *)

let test_dayset_range () =
  Alcotest.(check (list int)) "range" [ 3; 4; 5 ] (Dayset.elements (Dayset.range 3 5));
  Alcotest.(check bool) "empty" true (Dayset.is_empty (Dayset.range 5 3))

let test_dayset_contiguous () =
  Alcotest.(check bool) "contiguous" true (Dayset.is_contiguous (Dayset.range 2 7));
  Alcotest.(check bool) "gap" false
    (Dayset.is_contiguous (Dayset.of_int_list [ 1; 3 ]));
  Alcotest.(check bool) "empty contiguous" true (Dayset.is_contiguous Dayset.empty)

let test_dayset_pp () =
  Alcotest.(check string) "pp" "{d2, d3}" (Dayset.to_string (Dayset.range 2 3))

(* ------------------------------------------------------------------ *)
(* Golden traces (the paper's Tables 1-7)                             *)
(* ------------------------------------------------------------------ *)

let slots_of frame =
  List.init (Frame.n frame) (fun i ->
      Dayset.elements (Frame.slot_days frame (i + 1)))

let check_trace name scheme_kind ~w ~n expected =
  (* [expected] is a list of (day, slot day-lists). *)
  let env = make_env ~w ~n () in
  let s = Scheme.start scheme_kind env in
  List.iter
    (fun (day, slots) ->
      Scheme.advance_to s day;
      Alcotest.(check (list (list int)))
        (Printf.sprintf "%s day %d" name day)
        slots
        (slots_of (Scheme.frame s));
      Scheme.check_window_invariant s;
      Frame.validate (Scheme.frame s))
    expected

(* Table 1: DEL, W = 10, n = 2. *)
let test_table1_del () =
  check_trace "table1" Scheme.Del ~w:10 ~n:2
    [
      (10, [ [ 1; 2; 3; 4; 5 ]; [ 6; 7; 8; 9; 10 ] ]);
      (11, [ [ 2; 3; 4; 5; 11 ]; [ 6; 7; 8; 9; 10 ] ]);
      (12, [ [ 3; 4; 5; 11; 12 ]; [ 6; 7; 8; 9; 10 ] ]);
      (15, [ [ 11; 12; 13; 14; 15 ]; [ 6; 7; 8; 9; 10 ] ]);
      (16, [ [ 11; 12; 13; 14; 15 ]; [ 7; 8; 9; 10; 16 ] ]);
    ]

(* Table 2: REINDEX has the same time-set evolution as DEL. *)
let test_table2_reindex () =
  check_trace "table2" Scheme.Reindex ~w:10 ~n:2
    [
      (10, [ [ 1; 2; 3; 4; 5 ]; [ 6; 7; 8; 9; 10 ] ]);
      (11, [ [ 2; 3; 4; 5; 11 ]; [ 6; 7; 8; 9; 10 ] ]);
      (14, [ [ 5; 11; 12; 13; 14 ]; [ 6; 7; 8; 9; 10 ] ]);
      (16, [ [ 11; 12; 13; 14; 15 ]; [ 7; 8; 9; 10; 16 ] ]);
    ]

(* REINDEX rebuilds leave every constituent packed. *)
let test_reindex_stays_packed () =
  let env = make_env ~w:10 ~n:2 () in
  let s = Scheme.start Scheme.Reindex env in
  for _ = 1 to 12 do
    Scheme.transition s;
    for j = 1 to 2 do
      Alcotest.(check bool) "packed" true
        (Index.is_packed (Frame.slot_index (Scheme.frame s) j))
    done
  done

(* Table 3: WATA, W = 10, n = 4. *)
let test_table3_wata () =
  check_trace "table3" Scheme.Wata_star ~w:10 ~n:4
    [
      (10, [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10 ] ]);
      (11, [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10; 11 ] ]);
      (12, [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10; 11; 12 ] ]);
      (13, [ [ 13 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10; 11; 12 ] ]);
      (14, [ [ 13; 14 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10; 11; 12 ] ]);
    ]

(* Table 5: REINDEX+, W = 10, n = 2, including the Temp column. *)
let test_table5_reindex_plus () =
  let env = make_env ~w:10 ~n:2 () in
  let s = Reindex_plus.start env in
  let check day slots temp =
    while Reindex_plus.current_day s < day do
      Reindex_plus.transition s
    done;
    Alcotest.(check (list (list int)))
      (Printf.sprintf "slots day %d" day)
      slots
      (slots_of (Reindex_plus.frame s));
    Alcotest.(check (list int))
      (Printf.sprintf "temp day %d" day)
      temp
      (Dayset.elements (Reindex_plus.temp_days s))
  in
  check 10 [ [ 1; 2; 3; 4; 5 ]; [ 6; 7; 8; 9; 10 ] ] [];
  check 11 [ [ 2; 3; 4; 5; 11 ]; [ 6; 7; 8; 9; 10 ] ] [ 11 ];
  check 12 [ [ 3; 4; 5; 11; 12 ]; [ 6; 7; 8; 9; 10 ] ] [ 11; 12 ];
  check 13 [ [ 4; 5; 11; 12; 13 ]; [ 6; 7; 8; 9; 10 ] ] [ 11; 12; 13 ];
  check 14 [ [ 5; 11; 12; 13; 14 ]; [ 6; 7; 8; 9; 10 ] ] [ 11; 12; 13; 14 ];
  check 15 [ [ 11; 12; 13; 14; 15 ]; [ 6; 7; 8; 9; 10 ] ] [];
  check 16 [ [ 11; 12; 13; 14; 15 ]; [ 7; 8; 9; 10; 16 ] ] [ 16 ]

(* Table 6: REINDEX++, W = 10, n = 2, including the temporaries. *)
let test_table6_reindex_pp () =
  let env = make_env ~w:10 ~n:2 () in
  let s = Reindex_pp.start env in
  let check day slots temps =
    while Reindex_pp.current_day s < day do
      Reindex_pp.transition s
    done;
    Alcotest.(check (list (list int)))
      (Printf.sprintf "slots day %d" day)
      slots
      (slots_of (Reindex_pp.frame s));
    Alcotest.(check (list (list int)))
      (Printf.sprintf "temps day %d" day)
      temps
      (List.map Dayset.elements (Reindex_pp.temps_days s))
  in
  check 10
    [ [ 1; 2; 3; 4; 5 ]; [ 6; 7; 8; 9; 10 ] ]
    [ []; [ 5 ]; [ 4; 5 ]; [ 3; 4; 5 ]; [ 2; 3; 4; 5 ] ];
  check 11
    [ [ 2; 3; 4; 5; 11 ]; [ 6; 7; 8; 9; 10 ] ]
    [ []; [ 5 ]; [ 4; 5 ]; [ 3; 4; 5; 11 ] ];
  check 12
    [ [ 3; 4; 5; 11; 12 ]; [ 6; 7; 8; 9; 10 ] ]
    [ []; [ 5 ]; [ 4; 5; 11; 12 ] ];
  check 14 [ [ 5; 11; 12; 13; 14 ]; [ 6; 7; 8; 9; 10 ] ] [ [ 11; 12; 13; 14 ] ];
  check 15
    [ [ 11; 12; 13; 14; 15 ]; [ 6; 7; 8; 9; 10 ] ]
    [ []; [ 10 ]; [ 9; 10 ]; [ 8; 9; 10 ]; [ 7; 8; 9; 10 ] ];
  check 16
    [ [ 11; 12; 13; 14; 15 ]; [ 7; 8; 9; 10; 16 ] ]
    [ []; [ 10 ]; [ 9; 10 ]; [ 8; 9; 10; 16 ] ]

(* Table 7: RATA, W = 10, n = 4. *)
let test_table7_rata () =
  let env = make_env ~w:10 ~n:4 () in
  let s = Rata.start env in
  let check day slots temps =
    while Rata.current_day s < day do
      Rata.transition s
    done;
    Alcotest.(check (list (list int)))
      (Printf.sprintf "slots day %d" day)
      slots
      (slots_of (Rata.frame s));
    Alcotest.(check (list (list int)))
      (Printf.sprintf "temps day %d" day)
      temps
      (List.map Dayset.elements (Rata.temps_days s))
  in
  check 10 [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10 ] ] [ [ 3 ]; [ 2; 3 ] ];
  check 11 [ [ 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10; 11 ] ] [ [ 3 ] ];
  check 12 [ [ 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10; 11; 12 ] ] [];
  check 13 [ [ 13 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10; 11; 12 ] ] [ [ 6 ]; [ 5; 6 ] ];
  check 14 [ [ 13; 14 ]; [ 5; 6 ]; [ 7; 8; 9 ]; [ 10; 11; 12 ] ] [ [ 6 ] ]

(* ------------------------------------------------------------------ *)
(* Window invariants for all schemes x techniques                     *)
(* ------------------------------------------------------------------ *)

let techniques = [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ]

let run_invariant_check kind technique ~w ~n ~steps =
  let env = make_env ~technique ~w ~n () in
  let s = Scheme.start kind env in
  Scheme.check_window_invariant s;
  for _ = 1 to steps do
    Scheme.transition s;
    Scheme.check_window_invariant s;
    Frame.validate (Scheme.frame s)
  done;
  s

let test_invariants kind technique () =
  ignore (run_invariant_check kind technique ~w:10 ~n:3 ~steps:35)

let invariant_cases =
  List.concat_map
    (fun kind ->
      List.map
        (fun tech ->
          Alcotest.test_case
            (Printf.sprintf "%s / %s" (Scheme.name kind) (Env.technique_name tech))
            `Quick
            (test_invariants kind tech))
        techniques)
    Scheme.all

(* Property: invariants hold for random geometries. *)
let prop_window_invariants =
  QCheck2.Test.make ~name:"window invariants across geometries" ~count:60
    QCheck2.Gen.(
      tup4 (int_range 0 5) (int_range 2 14) (int_range 1 6) (int_range 0 2))
    (fun (kind_i, w, n, tech_i) ->
      let kind = List.nth Scheme.all kind_i in
      let n = max (Scheme.min_indexes kind) (min n w) in
      QCheck2.assume (n <= w);
      let technique = List.nth techniques tech_i in
      (try
         ignore (run_invariant_check kind technique ~w ~n ~steps:(2 * w));
         true
       with e ->
         Printf.eprintf "failure: %s w=%d n=%d %s: %s\n" (Scheme.name kind) w n
           (Env.technique_name technique) (Printexc.to_string e);
         false))

(* ------------------------------------------------------------------ *)
(* Query equivalence across schemes and techniques                    *)
(* ------------------------------------------------------------------ *)

let sorted = List.sort Entry.compare

let window_probe s value =
  let d = Scheme.current_day s in
  let w = (Scheme.env s).Env.w in
  sorted (Frame.timed_index_probe (Scheme.frame s) ~t1:(d - w + 1) ~t2:d ~value)

let window_scan s =
  let d = Scheme.current_day s in
  let w = (Scheme.env s).Env.w in
  sorted (Frame.timed_segment_scan (Scheme.frame s) ~t1:(d - w + 1) ~t2:d)

let test_query_equivalence () =
  let run kind technique =
    let env = make_env ~technique ~w:9 ~n:3 () in
    let s = Scheme.start kind env in
    Scheme.advance_to s 25;
    s
  in
  let reference = run Scheme.Del Env.In_place in
  let ref_scan = window_scan reference in
  Alcotest.(check bool) "reference scan non-empty" true (ref_scan <> []);
  List.iter
    (fun kind ->
      List.iter
        (fun technique ->
          let s = run kind technique in
          let label =
            Printf.sprintf "%s/%s" (Scheme.name kind) (Env.technique_name technique)
          in
          if window_scan s <> ref_scan then
            Alcotest.failf "%s: scan differs from reference" label;
          for v = 1 to 10 do
            if window_probe s v <> window_probe reference v then
              Alcotest.failf "%s: probe %d differs" label v
          done)
        techniques)
    Scheme.all

(* Untimed probes on WATA may return expired entries — the soft-window
   caveat the paper calls out. *)
let test_wata_soft_window_visible () =
  let env = make_env ~w:6 ~n:2 () in
  let s = Scheme.start Scheme.Wata_star env in
  (* Advance until some slot holds expired days. *)
  let rec go steps =
    if steps = 0 then ()
    else begin
      Scheme.transition s;
      let len = Frame.length (Scheme.frame s) in
      if len <= env.Env.w then go (steps - 1)
    end
  in
  go 20;
  let len = Frame.length (Scheme.frame s) in
  Alcotest.(check bool) "soft window retains expired days" true (len > env.Env.w);
  let all = Frame.segment_scan (Scheme.frame s) in
  let d = Scheme.current_day s in
  let has_expired =
    List.exists (fun (e : Entry.t) -> e.Entry.day <= d - env.Env.w) all
  in
  Alcotest.(check bool) "untimed scan sees expired entries" true has_expired

(* ------------------------------------------------------------------ *)
(* WATA length bound (Theorem 2)                                      *)
(* ------------------------------------------------------------------ *)

let test_wata_length_bound_tight () =
  (* The bound must be respected always and attained at least once. *)
  let w = 10 and n = 4 in
  let env = make_env ~w ~n () in
  let s = Scheme.start Scheme.Wata_star env in
  let bound = Wata.length_bound ~w ~n in
  let maxlen = ref 0 in
  for _ = 1 to 60 do
    Scheme.transition s;
    let len = Frame.length (Scheme.frame s) in
    if len > !maxlen then maxlen := len;
    if len > bound then Alcotest.failf "length %d exceeds bound %d" len bound
  done;
  Alcotest.(check int) "bound attained" bound !maxlen

let prop_wata_length_bound =
  QCheck2.Test.make ~name:"WATA* length bound for all geometries" ~count:40
    QCheck2.Gen.(pair (int_range 2 16) (int_range 2 8))
    (fun (w, n) ->
      QCheck2.assume (n <= w);
      let env = make_env ~w ~n () in
      let s = Scheme.start Scheme.Wata_star env in
      let bound = Wata.length_bound ~w ~n in
      let ok = ref true in
      for _ = 1 to 3 * w do
        Scheme.transition s;
        if Frame.length (Scheme.frame s) > bound then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Transition marks                                                   *)
(* ------------------------------------------------------------------ *)

(* REINDEX++ makes new data queryable after a single AddToIndex; its
   transition time must be well below REINDEX+'s, which re-adds up to
   W/n - 1 old days before swapping. *)
let test_transition_time_ordering () =
  let measure kind =
    let env = make_env ~w:12 ~n:2 () in
    let s = Scheme.start kind env in
    let total = ref 0.0 in
    let steps = 24 in
    for _ = 1 to steps do
      let before = Wave_disk.Disk.elapsed env.Env.disk in
      Scheme.transition s;
      total := !total +. (Scheme.last_mark s -. before)
    done;
    !total /. float_of_int steps
  in
  let t_pp = measure Scheme.Reindex_pp in
  let t_plus = measure Scheme.Reindex_plus in
  Alcotest.(check bool)
    (Printf.sprintf "REINDEX++ (%.4f) < REINDEX+ (%.4f)" t_pp t_plus)
    true (t_pp < t_plus)

(* ------------------------------------------------------------------ *)
(* Disk-space accounting                                              *)
(* ------------------------------------------------------------------ *)

(* Everything alive on the disk must be owned by the frame or by a
   scheme temporary: no leaks across transitions. *)
let test_no_disk_leaks kind technique () =
  let env = make_env ~technique ~w:8 ~n:(max 2 (Scheme.min_indexes kind)) () in
  let s = Scheme.start kind env in
  for _ = 1 to 30 do
    Scheme.transition s;
    let owned =
      Scheme.allocated_bytes s / env.Env.icfg.Index.entry_bytes
    in
    let live = Wave_disk.Disk.live_blocks env.Env.disk in
    if live <> owned then
      Alcotest.failf "leak: disk holds %d blocks, scheme owns %d" live owned
  done

let leak_cases =
  List.concat_map
    (fun kind ->
      List.map
        (fun tech ->
          Alcotest.test_case
            (Printf.sprintf "%s / %s" (Scheme.name kind) (Env.technique_name tech))
            `Quick
            (test_no_disk_leaks kind tech))
        techniques)
    Scheme.all

(* ------------------------------------------------------------------ *)
(* Scheme dispatch utilities                                          *)
(* ------------------------------------------------------------------ *)

let test_scheme_names () =
  List.iter
    (fun kind ->
      match Scheme.of_name (Scheme.name kind) with
      | Some k when k = kind -> ()
      | _ -> Alcotest.failf "name roundtrip failed for %s" (Scheme.name kind))
    Scheme.all;
  Alcotest.(check bool) "unknown" true (Scheme.of_name "nope" = None);
  Alcotest.(check bool) "wata alias" true (Scheme.of_name "wata" = Some Scheme.Wata_star)

let test_min_indexes_enforced () =
  let env = make_env ~w:10 ~n:1 () in
  Alcotest.check_raises "wata n=1" (Invalid_argument "Wata.start: WATA needs n >= 2")
    (fun () -> ignore (Scheme.start Scheme.Wata_star env));
  Alcotest.check_raises "rata n=1" (Invalid_argument "Rata.start: RATA needs n >= 2")
    (fun () -> ignore (Scheme.start Scheme.Rata_star env))

let test_env_validation () =
  Alcotest.check_raises "n > w" (Invalid_argument "Env.create: need n <= w")
    (fun () ->
      ignore (Env.create ~store:(make_store ()) ~w:3 ~n:4 ()));
  Alcotest.check_raises "n < 1" (Invalid_argument "Env.create: n must be >= 1")
    (fun () ->
      ignore (Env.create ~store:(make_store ()) ~w:3 ~n:0 ()))

(* Timed queries restricted to sub-ranges. *)
let test_timed_queries_subrange () =
  let env = make_env ~w:10 ~n:5 () in
  let s = Scheme.start Scheme.Del env in
  Scheme.advance_to s 20;
  let frame = Scheme.frame s in
  let full = sorted (Frame.timed_segment_scan frame ~t1:11 ~t2:20) in
  let first_half = Frame.timed_segment_scan frame ~t1:11 ~t2:15 in
  let second_half = Frame.timed_segment_scan frame ~t1:16 ~t2:20 in
  Alcotest.(check int) "halves partition the window" (List.length full)
    (List.length first_half + List.length second_half);
  List.iter
    (fun (e : Entry.t) ->
      if e.Entry.day < 11 || e.Entry.day > 15 then
        Alcotest.fail "first half out of range")
    first_half

(* Property: every scheme x technique serves the exact same windowed
   query results on random geometries — the maintenance strategy is
   invisible to (timed) queries. *)
let prop_query_equivalence_random_geometry =
  QCheck2.Test.make ~name:"windowed queries identical across schemes" ~count:25
    QCheck2.Gen.(triple (int_range 2 10) (int_range 2 4) small_int)
    (fun (w, n, seed) ->
      QCheck2.assume (n <= w);
      let mk kind technique =
        let store = make_store () in
        let env =
          Env.create ~technique
            ~store:(fun d -> store d)
            ~w ~n ()
        in
        ignore seed;
        let s = Scheme.start kind env in
        Scheme.advance_to s (w + 7 + (seed mod 5));
        s
      in
      let reference = mk Scheme.Del Env.In_place in
      let expect = window_scan reference in
      List.for_all
        (fun kind ->
          List.for_all
            (fun technique -> window_scan (mk kind technique) = expect)
            techniques)
        Scheme.all)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "core.split",
      [
        Alcotest.test_case "even" `Quick test_split_even;
        Alcotest.test_case "uneven" `Quick test_split_uneven;
        Alcotest.test_case "singletons" `Quick test_split_singletons;
      ]
      @ qcheck [ prop_split_covers ] );
    ( "core.dayset",
      [
        Alcotest.test_case "range" `Quick test_dayset_range;
        Alcotest.test_case "contiguous" `Quick test_dayset_contiguous;
        Alcotest.test_case "pp" `Quick test_dayset_pp;
      ] );
    ( "core.traces",
      [
        Alcotest.test_case "table 1 (DEL)" `Quick test_table1_del;
        Alcotest.test_case "table 2 (REINDEX)" `Quick test_table2_reindex;
        Alcotest.test_case "REINDEX stays packed" `Quick test_reindex_stays_packed;
        Alcotest.test_case "table 3 (WATA*)" `Quick test_table3_wata;
        Alcotest.test_case "table 5 (REINDEX+)" `Quick test_table5_reindex_plus;
        Alcotest.test_case "table 6 (REINDEX++)" `Quick test_table6_reindex_pp;
        Alcotest.test_case "table 7 (RATA*)" `Quick test_table7_rata;
      ] );
    ("core.invariants", invariant_cases @ qcheck [ prop_window_invariants ]);
    ( "core.queries",
      [
        Alcotest.test_case "equivalence across schemes" `Slow test_query_equivalence;
        Alcotest.test_case "WATA soft window visible" `Quick
          test_wata_soft_window_visible;
        Alcotest.test_case "timed queries subrange" `Quick test_timed_queries_subrange;
      ]
      @ qcheck [ prop_query_equivalence_random_geometry ] );
    ( "core.wata_bounds",
      [ Alcotest.test_case "length bound tight" `Quick test_wata_length_bound_tight ]
      @ qcheck [ prop_wata_length_bound ] );
    ( "core.transitions",
      [ Alcotest.test_case "REINDEX++ faster than REINDEX+" `Quick
          test_transition_time_ordering ] );
    ("core.leaks", leak_cases);
    ( "core.misc",
      [
        Alcotest.test_case "scheme names" `Quick test_scheme_names;
        Alcotest.test_case "min indexes enforced" `Quick test_min_indexes_enforced;
        Alcotest.test_case "env validation" `Quick test_env_validation;
      ] );
  ]

