(* Workload generator tests: volume seasonality, determinism, value
   distributions, query streams. *)

open Wave_workload
open Wave_storage

(* --- Netnews ------------------------------------------------------ *)

let ncfg = Netnews.default_config

let test_netnews_deterministic () =
  let s1 = Netnews.store ncfg and s2 = Netnews.store ncfg in
  for day = 1 to 10 do
    let b1 = s1 day and b2 = s2 day in
    Alcotest.(check int)
      (Printf.sprintf "day %d volume" day)
      (Entry.batch_size b1) (Entry.batch_size b2);
    Array.iteri
      (fun i (p1 : Entry.posting) ->
        let p2 = b2.Entry.postings.(i) in
        if p1.Entry.value <> p2.Entry.value then Alcotest.fail "values differ")
      b1.Entry.postings
  done

let test_netnews_weekly_wave () =
  (* Averaged over many weeks, Wednesdays (day mod 7 = 3) must far
     exceed Sundays (day mod 7 = 0). *)
  let wednesday = ref 0 and sunday = ref 0 and weeks = 26 in
  for k = 0 to weeks - 1 do
    wednesday := !wednesday + Netnews.daily_volume ncfg ((k * 7) + 3);
    sunday := !sunday + Netnews.daily_volume ncfg ((k * 7) + 7)
  done;
  let ratio = float_of_int !wednesday /. float_of_int !sunday in
  Alcotest.(check bool)
    (Printf.sprintf "wed/sun ratio %.2f in [2, 5]" ratio)
    true
    (ratio > 2.0 && ratio < 5.0)

let test_netnews_figure2_range () =
  (* With the paper's 70k mean, the September series must span roughly
     30k (Sunday trough) to 110k (midweek peak). *)
  let cfg = { ncfg with Netnews.mean_postings = 70_000; jitter = 0.08 } in
  let series = Netnews.volume_series cfg ~days:30 in
  let vols = List.map snd series in
  let vmin = List.fold_left min max_int vols in
  let vmax = List.fold_left max 0 vols in
  Alcotest.(check bool)
    (Printf.sprintf "trough %d in [20k, 45k]" vmin)
    true
    (vmin > 20_000 && vmin < 45_000);
  Alcotest.(check bool)
    (Printf.sprintf "peak %d in [85k, 130k]" vmax)
    true
    (vmax > 85_000 && vmax < 130_000)

let test_netnews_zipf_values () =
  let store = Netnews.store { ncfg with Netnews.mean_postings = 5_000 } in
  let b = store 3 in
  let counts = Hashtbl.create 256 in
  Array.iter
    (fun (p : Entry.posting) ->
      Hashtbl.replace counts p.Entry.value
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.Entry.value)))
    b.Entry.postings;
  (* Zipf skew: the most frequent value appears far more often than the
     median-frequency one. *)
  let freqs = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
  let sorted = List.sort (fun a b -> compare b a) freqs in
  match sorted with
  | top :: _ ->
    Alcotest.(check bool) "top value frequent" true (top > 50);
    Alcotest.(check bool) "long tail" true
      (List.length (List.filter (fun c -> c = 1) sorted) > 100)
  | [] -> Alcotest.fail "empty batch"

let test_netnews_entries_carry_day () =
  let store = Netnews.store ncfg in
  let b = store 9 in
  Array.iter
    (fun (p : Entry.posting) ->
      if p.Entry.entry.Entry.day <> 9 then Alcotest.fail "wrong timestamp")
    b.Entry.postings

let test_netnews_day_validation () =
  Alcotest.check_raises "day 0" (Invalid_argument "Netnews.daily_volume: days start at 1")
    (fun () -> ignore (Netnews.daily_volume ncfg 0))

(* --- TPC-D -------------------------------------------------------- *)

let tcfg = Tpcd.default_config

let test_tpcd_uniform_keys () =
  let store = Tpcd.store { tcfg with Tpcd.mean_rows = 20_000; suppliers = 100 } in
  let b = store 1 in
  let counts = Array.make 101 0 in
  Array.iter
    (fun (p : Entry.posting) -> counts.(p.Entry.value) <- counts.(p.Entry.value) + 1)
    b.Entry.postings;
  let observed = Array.sub counts 1 100 in
  let chi = Wave_util.Stats.chi_square_uniform ~observed in
  (* 99 dof: critical value ~148 at p = 0.001. *)
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.1f < 148" chi)
    true (chi < 148.0)

let test_tpcd_steady_volume () =
  let vols = List.init 60 (fun i -> Tpcd.daily_volume tcfg (i + 1)) in
  let arr = Array.of_list (List.map float_of_int vols) in
  let s = Wave_util.Stats.summarize arr in
  Alcotest.(check bool) "low relative spread" true
    (s.Wave_util.Stats.stddev /. s.Wave_util.Stats.mean < 0.15)

let test_tpcd_revenue () =
  Alcotest.(check int) "revenue sums info" 30
    (Tpcd.revenue
       [
         { Entry.rid = 1; day = 1; info = 10 };
         { Entry.rid = 2; day = 1; info = 20 };
       ])

(* --- Query generation --------------------------------------------- *)

let test_queries_counts () =
  let qs = Query_gen.day_queries Query_gen.scam_spec ~day:10 ~w:7 in
  let probes, scans =
    List.partition (function Query_gen.Probe _ -> true | Query_gen.Scan _ -> false) qs
  in
  Alcotest.(check int) "probes" 100 (List.length probes);
  Alcotest.(check int) "scans" 1 (List.length scans)

let test_queries_ranges () =
  List.iter
    (fun q ->
      match q with
      | Query_gen.Probe { t1; t2; _ } ->
        if t1 <> 4 || t2 <> 10 then Alcotest.fail "probe not whole-window"
      | Query_gen.Scan { t1; t2 } ->
        if t1 <> 10 || t2 <> 10 then Alcotest.fail "scan not current-day")
    (Query_gen.day_queries Query_gen.scam_spec ~day:10 ~w:7)

let test_queries_deterministic () =
  let q1 = Query_gen.day_queries Query_gen.wse_spec ~day:40 ~w:35 in
  let q2 = Query_gen.day_queries Query_gen.wse_spec ~day:40 ~w:35 in
  Alcotest.(check bool) "same stream" true (q1 = q2)

let prop_subrange_within_window =
  QCheck2.Test.make ~name:"random subranges stay in window" ~count:200
    QCheck2.Gen.(pair (int_range 10 100) (int_range 2 20))
    (fun (day, w) ->
      QCheck2.assume (day >= w);
      let spec =
        {
          Query_gen.seed = 5;
          probes_per_day = 20;
          probe_range = Query_gen.Random_subrange;
          scans_per_day = 5;
          scan_range = Query_gen.Random_subrange;
          value_dist = Query_gen.Uniform 50;
        }
      in
      List.for_all
        (fun q ->
          let t1, t2 =
            match q with
            | Query_gen.Probe { t1; t2; _ } -> (t1, t2)
            | Query_gen.Scan { t1; t2 } -> (t1, t2)
          in
          t1 <= t2 && t1 >= day - w + 1 && t2 <= day)
        (Query_gen.day_queries spec ~day ~w))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "workload.netnews",
      [
        Alcotest.test_case "deterministic" `Quick test_netnews_deterministic;
        Alcotest.test_case "weekly wave" `Quick test_netnews_weekly_wave;
        Alcotest.test_case "figure 2 range" `Quick test_netnews_figure2_range;
        Alcotest.test_case "zipf values" `Quick test_netnews_zipf_values;
        Alcotest.test_case "entries carry day" `Quick test_netnews_entries_carry_day;
        Alcotest.test_case "day validation" `Quick test_netnews_day_validation;
      ] );
    ( "workload.tpcd",
      [
        Alcotest.test_case "uniform keys" `Quick test_tpcd_uniform_keys;
        Alcotest.test_case "steady volume" `Quick test_tpcd_steady_volume;
        Alcotest.test_case "revenue" `Quick test_tpcd_revenue;
      ] );
    ( "workload.queries",
      [
        Alcotest.test_case "counts" `Quick test_queries_counts;
        Alcotest.test_case "ranges" `Quick test_queries_ranges;
        Alcotest.test_case "deterministic" `Quick test_queries_deterministic;
      ]
      @ qcheck [ prop_subrange_within_window ] );
  ]
