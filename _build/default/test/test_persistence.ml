(* Tests for the batch codec and the wave manifest (checkpoint /
   restart). *)

open Wave_core
open Wave_storage

let batch ~day postings = Entry.batch_create ~day (Array.of_list postings)

let posting value rid info day = { Entry.value; entry = { Entry.rid; day; info } }

(* --- Codec --------------------------------------------------------- *)

let test_codec_roundtrip () =
  let b =
    batch ~day:7
      [ posting 5 100 3 7; posting 2 101 0 7; posting 9999 102 (-4) 7 ]
  in
  match Codec.decode_batch (Codec.encode_batch b) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok b' ->
    Alcotest.(check int) "day" 7 b'.Entry.day;
    Alcotest.(check int) "count" 3 (Entry.batch_size b');
    Array.iteri
      (fun i (p : Entry.posting) ->
        let q = b.Entry.postings.(i) in
        if p.Entry.value <> q.Entry.value
           || not (Entry.equal p.Entry.entry q.Entry.entry)
        then Alcotest.failf "posting %d differs" i)
      b'.Entry.postings

let test_codec_empty () =
  let b = batch ~day:1 [] in
  match Codec.decode_batch (Codec.encode_batch b) with
  | Ok b' -> Alcotest.(check int) "empty" 0 (Entry.batch_size b')
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_negative_day () =
  (* ZigZag handles negative fields (e.g. epoch-relative days). *)
  let b = batch ~day:(-3) [ posting 1 1 1 (-3) ] in
  match Codec.decode_batch (Codec.encode_batch b) with
  | Ok b' -> Alcotest.(check int) "day -3" (-3) b'.Entry.day
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_rejects_garbage () =
  let check_err name s =
    match Codec.decode_batch s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" name
  in
  check_err "empty" "";
  check_err "bad magic" "XXXX\x00\x00\x00";
  check_err "truncated" (String.sub (Codec.encode_batch (batch ~day:1 [ posting 1 1 1 1 ])) 0 6);
  let good = Codec.encode_batch (batch ~day:1 [ posting 1 1 1 1 ]) in
  check_err "trailing" (good ^ "z");
  (* flip a payload byte: checksum must catch it *)
  let corrupted = Bytes.of_string good in
  Bytes.set corrupted 5 (Char.chr ((Char.code (Bytes.get corrupted 5) + 1) land 0xff));
  check_err "bitflip" (Bytes.to_string corrupted)

let test_codec_batches () =
  let bs = [ batch ~day:1 [ posting 1 1 0 1 ]; batch ~day:2 [ posting 2 2 0 2 ] ] in
  match Codec.decode_batches (Codec.encode_batches bs) with
  | Ok [ b1; b2 ] ->
    Alcotest.(check int) "day1" 1 b1.Entry.day;
    Alcotest.(check int) "day2" 2 b2.Entry.day
  | Ok _ -> Alcotest.fail "wrong count"
  | Error e -> Alcotest.failf "decode failed: %s" e

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrips random batches" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 60)
        (list_size (int_range 0 40)
           (triple (int_range 1 10_000) nat (int_range (-1000) 1000))))
    (fun (day, triples) ->
      let b =
        batch ~day (List.map (fun (v, rid, info) -> posting v rid info day) triples)
      in
      match Codec.decode_batch (Codec.encode_batch b) with
      | Ok b' ->
        Entry.batch_size b = Entry.batch_size b'
        && Array.for_all2
             (fun (p : Entry.posting) (q : Entry.posting) ->
               p.Entry.value = q.Entry.value && Entry.equal p.Entry.entry q.Entry.entry)
             b.Entry.postings b'.Entry.postings
      | Error _ -> false)

let prop_codec_never_crashes_on_garbage =
  QCheck2.Test.make ~name:"codec rejects random garbage safely" ~count:300
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      match Codec.decode_batch s with
      | Ok _ | Error _ -> true)

(* --- Manifest ------------------------------------------------------- *)

let store day =
  Entry.batch_create ~day
    (Array.init 5 (fun i ->
         posting (1 + ((day + i) mod 4)) ((day * 10) + i) i day))

let test_manifest_roundtrip () =
  let env = Env.create ~store ~technique:Env.Packed_shadow ~w:8 ~n:3 () in
  let s = Scheme.start Scheme.Wata_star env in
  Scheme.advance_to s 15;
  let m = Manifest.capture s in
  match Manifest.of_string (Manifest.to_string m) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m' ->
    Alcotest.(check bool) "scheme" true (m'.Manifest.scheme = Scheme.Wata_star);
    Alcotest.(check int) "day" 15 m'.Manifest.day;
    Alcotest.(check int) "w" 8 m'.Manifest.w;
    Alcotest.(check int) "n" 3 m'.Manifest.n;
    Alcotest.(check bool) "slots equal" true
      (List.for_all2 Dayset.equal m.Manifest.slots m'.Manifest.slots)

let test_manifest_bad_inputs () =
  let check_err name s =
    match Manifest.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" name
  in
  check_err "empty" "";
  check_err "bad header" "something else\n";
  check_err "unknown scheme" "wave-manifest v1\nscheme NOPE\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,2\nslot 2 3,4,5\n";
  check_err "slot mismatch" "wave-manifest v1\nscheme DEL\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,2\n";
  check_err "bad int" "wave-manifest v1\nscheme DEL\ntechnique in-place\nw five\nn 2\nday 5\nslot 1 1\nslot 2 2\n"

let sorted_scan frame = List.sort Entry.compare (Frame.segment_scan frame)

let test_manifest_restore_frame () =
  let env = Env.create ~store ~w:8 ~n:3 () in
  let s = Scheme.start Scheme.Del env in
  Scheme.advance_to s 20;
  let m = Manifest.capture s in
  (* restore on a fresh disk/env *)
  let env' = Env.create ~store ~w:8 ~n:3 () in
  let frame = Manifest.restore_frame m env' in
  Frame.validate frame;
  Alcotest.(check bool) "same contents" true
    (sorted_scan frame = sorted_scan (Scheme.frame s))

let test_manifest_restart () =
  let env = Env.create ~store ~w:6 ~n:2 () in
  let s = Scheme.start Scheme.Reindex_pp env in
  Scheme.advance_to s 17;
  let m = Manifest.capture s in
  let env' = Env.create ~store ~w:6 ~n:2 () in
  let s' = Manifest.restart m env' in
  Alcotest.(check int) "same day" 17 (Scheme.current_day s');
  Scheme.check_window_invariant s';
  (* hard window: identical query results *)
  Alcotest.(check bool) "query equivalent" true
    (sorted_scan (Scheme.frame s') = sorted_scan (Scheme.frame s));
  (* and the restarted scheme keeps running *)
  Scheme.transition s';
  Scheme.check_window_invariant s'

let test_manifest_geometry_mismatch () =
  let env = Env.create ~store ~w:6 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  let m = Manifest.capture s in
  let env' = Env.create ~store ~w:7 ~n:2 () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Manifest.restore_frame: geometry mismatch") (fun () ->
      ignore (Manifest.restore_frame m env'))

let prop_manifest_restart_equivalence =
  QCheck2.Test.make ~name:"manifest restart is query-equivalent" ~count:30
    QCheck2.Gen.(triple (int_range 0 5) (int_range 3 9) (int_range 2 4))
    (fun (kind_i, w, n) ->
      let kind = List.nth Scheme.all kind_i in
      let n = max (Scheme.min_indexes kind) (min n w) in
      QCheck2.assume (n <= w);
      let env = Env.create ~store ~w ~n () in
      let s = Scheme.start kind env in
      Scheme.advance_to s (w + 9);
      let m = Manifest.capture s in
      match Manifest.of_string (Manifest.to_string m) with
      | Error _ -> false
      | Ok m' ->
        let env' = Env.create ~store ~w ~n () in
        let frame = Manifest.restore_frame m' env' in
        Frame.validate frame;
        sorted_scan frame = sorted_scan (Scheme.frame s))

(* --- File store ------------------------------------------------------ *)

let test_file_store_roundtrip () =
  let dir = Filename.temp_file "wave" "" in
  Sys.remove dir;
  Wave_workload.File_store.export ~dir ~store ~days:[ 1; 2; 3; 5 ];
  Alcotest.(check (list int)) "available" [ 1; 2; 3; 5 ]
    (Wave_workload.File_store.available_days ~dir);
  let fs = Wave_workload.File_store.store ~dir in
  for d = 1 to 3 do
    let a = store d and b = fs d in
    Alcotest.(check int)
      (Printf.sprintf "day %d size" d)
      (Entry.batch_size a) (Entry.batch_size b)
  done;
  (* a wave can run directly off the files *)
  Wave_workload.File_store.export ~dir ~store ~days:(List.init 20 (fun i -> i + 1));
  let env = Env.create ~store:(Wave_workload.File_store.store ~dir) ~w:5 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  Scheme.advance_to s 15;
  Scheme.check_window_invariant s;
  (* missing day raises *)
  let fs = Wave_workload.File_store.store ~dir in
  Alcotest.(check bool) "missing day raises" true
    (try
       ignore (fs 99);
       false
     with Failure _ -> true)

let test_file_store_rejects_corruption () =
  let dir = Filename.temp_file "wave" "" in
  Sys.remove dir;
  Wave_workload.File_store.export ~dir ~store ~days:[ 4 ];
  let path = Filename.concat dir (Wave_workload.File_store.day_filename 4) in
  let oc = open_out_bin path in
  output_string oc "WVB1 garbage";
  close_out oc;
  let fs = Wave_workload.File_store.store ~dir in
  Alcotest.(check bool) "corrupt file rejected" true
    (try
       ignore (fs 4);
       false
     with Failure _ -> true)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "storage.codec",
      [
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "empty" `Quick test_codec_empty;
        Alcotest.test_case "negative day" `Quick test_codec_negative_day;
        Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        Alcotest.test_case "batch list" `Quick test_codec_batches;
      ]
      @ qcheck [ prop_codec_roundtrip; prop_codec_never_crashes_on_garbage ] );
    ( "core.manifest",
      [
        Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
        Alcotest.test_case "bad inputs" `Quick test_manifest_bad_inputs;
        Alcotest.test_case "restore frame" `Quick test_manifest_restore_frame;
        Alcotest.test_case "restart" `Quick test_manifest_restart;
        Alcotest.test_case "geometry mismatch" `Quick test_manifest_geometry_mismatch;
      ]
      @ qcheck [ prop_manifest_restart_equivalence ] );
    ( "workload.file_store",
      [
        Alcotest.test_case "roundtrip" `Quick test_file_store_roundtrip;
        Alcotest.test_case "rejects corruption" `Quick
          test_file_store_rejects_corruption;
      ] );
  ]


