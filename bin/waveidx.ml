(* waveidx: command-line driver for the Wave-Indices reproduction.

   Subcommands:
     list            enumerate the reproduction experiments
     run <id>...     run specific experiments (table3, fig6, thm2, ...)
     all             run every experiment
     sim             simulate a scheme over a workload with chosen
                     geometry, technique and query mix                 *)

open Cmdliner
open Wave_core

let list_cmd =
  let doc = "List the reproduction experiments (one per paper artifact)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-10s %-55s [%s]\n" e.Wave_experiments.Experiment.id
          e.Wave_experiments.Experiment.title
          e.Wave_experiments.Experiment.paper_claim)
      Wave_experiments.Experiment.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one or more experiments by id." in
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"experiment id")
  in
  let run ids =
    let missing =
      List.filter (fun id -> Wave_experiments.Experiment.find id = None) ids
    in
    if missing <> [] then begin
      Printf.eprintf "unknown experiment(s): %s\nuse 'waveidx list'\n"
        (String.concat ", " missing);
      exit 1
    end;
    List.iter
      (fun id ->
        match Wave_experiments.Experiment.find id with
        | Some e ->
          Printf.printf "=== %s: %s ===\npaper: %s\n\n%s\n"
            e.Wave_experiments.Experiment.id e.Wave_experiments.Experiment.title
            e.Wave_experiments.Experiment.paper_claim
            (e.Wave_experiments.Experiment.run ())
        | None -> assert false)
      ids
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ ids)

let all_cmd =
  let doc = "Run every reproduction experiment." in
  let run () = print_string (Wave_experiments.Experiment.run_all ()) in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ const ())

let scheme_conv =
  let parse s =
    match Scheme.of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print ppf k = Format.pp_print_string ppf (Scheme.name k) in
  Arg.conv (parse, print)

let technique_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "in-place" | "inplace" | "ip" -> Ok Env.In_place
    | "simple-shadow" | "simple" | "ss" -> Ok Env.Simple_shadow
    | "packed-shadow" | "packed" | "ps" -> Ok Env.Packed_shadow
    | _ -> Error (`Msg (Printf.sprintf "unknown technique %S" s))
  in
  let print ppf t = Format.pp_print_string ppf (Env.technique_name t) in
  Arg.conv (parse, print)

let partition_conv =
  let parse s =
    match Wave_shard.Partition.kind_of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown partitioning %S (hash | range)" s))
  in
  let print ppf k = Format.pp_print_string ppf (Wave_shard.Partition.kind_name k) in
  Arg.conv (parse, print)

let disk_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "sim" -> Ok Wave_disk.Disk.Sim
    | _ -> (
      match String.index_opt s ':' with
      | Some i when String.lowercase_ascii (String.sub s 0 i) = "file" ->
        let path = String.sub s (i + 1) (String.length s - i - 1) in
        if path = "" then Error (`Msg "file: needs a path")
        else Ok (Wave_disk.Disk.File path)
      | _ -> Error (`Msg (Printf.sprintf "bad disk backend %S (sim | file:PATH)" s)))
  in
  let print ppf = function
    | Wave_disk.Disk.Sim -> Format.pp_print_string ppf "sim"
    | Wave_disk.Disk.File p -> Format.fprintf ppf "file:%s" p
  in
  Arg.conv (parse, print)

(* Real-I/O counter block, printed after any run on a file backend. *)
let print_file_io_stats () =
  let v name =
    match Wave_obs.Metrics.lookup ("disk.file." ^ name) with
    | Some (`Counter f) -> f
    | _ -> 0.0
  in
  Printf.printf
    "real I/O           preads=%.0f pwrites=%.0f fsyncs=%.0f renames=%.0f \
     read=%.0fB written=%.0fB\n"
    (v "preads") (v "pwrites") (v "fsyncs") (v "renames") (v "bytes_read")
    (v "bytes_written");
  Printf.printf "real I/O faults    retries=%.0f giveups=%.0f stalls=%.0f\n"
    (v "retries") (v "giveups") (v "stalls");
  match Wave_obs.Metrics.lookup "disk.file.io_wall_s" with
  | Some (`Histogram (Some h)) ->
    Printf.printf
      "real I/O wall      %d calls  mean %.1fus  p95 %.1fus  p99 %.1fus  max \
       %.1fus\n"
      h.Wave_obs.Metrics.count
      (h.Wave_obs.Metrics.mean *. 1e6)
      (h.Wave_obs.Metrics.p95 *. 1e6)
      (h.Wave_obs.Metrics.p99 *. 1e6)
      (h.Wave_obs.Metrics.max *. 1e6)
  | _ -> ()

(* Top-k hot-spot table over a profile subtree, shared by the profile
   subcommand and sim --profile. *)
let print_top_table ?under ~k title prof =
  let nodes = Wave_obs.Profile.top_self ?under ~k prof in
  if nodes <> [] then begin
    Printf.printf "\n%s\n" title;
    Printf.printf "  %-52s %6s %12s %12s %8s\n" "path" "calls" "self(ms)"
      "total(ms)" "seeks";
    List.iter
      (fun n ->
        Printf.printf "  %-52s %6d %12.4f %12.4f %8d\n"
          (Wave_obs.Profile.path_string n)
          n.Wave_obs.Profile.calls
          (n.Wave_obs.Profile.self_model *. 1e3)
          (n.Wave_obs.Profile.total_model *. 1e3)
          n.Wave_obs.Profile.seeks)
      nodes
  end

let sim_cmd =
  let doc = "Simulate a maintenance scheme over a synthetic workload." in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Scheme.Del
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"DEL | REINDEX | REINDEX+ | REINDEX++ | WATA | RATA")
  in
  let technique =
    Arg.(
      value
      & opt technique_conv Env.In_place
      & info [ "technique" ] ~docv:"TECH" ~doc:"in-place | simple-shadow | packed-shadow")
  in
  let w = Arg.(value & opt int 7 & info [ "w"; "window" ] ~doc:"window length in days") in
  let n = Arg.(value & opt int 2 & info [ "n"; "indexes" ] ~doc:"constituent indexes") in
  let days = Arg.(value & opt int 30 & info [ "days" ] ~doc:"days to simulate") in
  let postings =
    Arg.(value & opt int 500 & info [ "postings" ] ~doc:"mean postings per day")
  in
  let workload =
    Arg.(
      value
      & opt (enum [ ("netnews", `Netnews); ("tpcd", `Tpcd) ]) `Netnews
      & info [ "workload" ] ~doc:"netnews | tpcd")
  in
  let probes =
    Arg.(value & opt int 50 & info [ "probes" ] ~doc:"timed probes per day")
  in
  let scans = Arg.(value & opt int 2 & info [ "scans" ] ~doc:"timed scans per day") in
  let cache_blocks =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-blocks" ] ~docv:"N"
          ~doc:"attach an N-frame buffer pool (default: uncached cost model)")
  in
  let cache_readahead =
    Arg.(
      value
      & opt int 8
      & info [ "cache-readahead" ] ~docv:"R"
          ~doc:"demand-read prefetch depth when the pool is attached")
  in
  let write_back =
    Arg.(
      value & flag
      & info [ "write-back" ]
          ~doc:
            "defer writes in the pool (flush at transition barriers); \
             requires --cache-blocks")
  in
  let alerts =
    Arg.(
      value
      & opt (some string) None
      & info [ "alerts" ] ~docv:"RULES.json"
          ~doc:
            "evaluate declarative alert rules (JSON: {\"rules\": [{name, \
             metric, stat?, op, threshold, for_days?, scope?}]}): \
             scope \"day\" rules at every day boundary, scope \
             \"transition\" rules after every transition step over the \
             runner.transition.* gauges")
  in
  let alerts_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "alerts-out" ] ~docv:"FILE"
          ~doc:"write the machine-readable alerts block here (requires --alerts)")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"trace the run and print per-phase hot-spot tables")
  in
  let top =
    Arg.(value & opt int 8 & info [ "top" ] ~doc:"hot-spot table size for --profile")
  in
  let disk =
    Arg.(
      value
      & opt disk_conv Wave_disk.Disk.Sim
      & info [ "disk" ] ~docv:"BACKEND"
          ~doc:
            "sim (the paper's pure cost model, default) or file:PATH — the \
             same disk over a real block file at PATH, every write landing \
             through the syscall shim (retry/backoff, disk.file.* metrics)")
  in
  let stall_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stall-after" ] ~docv:"K"
          ~doc:
            "arm a stall fault on the K-th write operation of the run \
             (charges --stall-seconds of model time, then proceeds); pair \
             with --alerts to watch the day's transition alert fire")
  in
  let stall_seconds =
    Arg.(
      value
      & opt float 30.0
      & info [ "stall-seconds" ] ~docv:"S" ~doc:"stall duration for --stall-after")
  in
  let flight_recorder =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"FILE"
          ~doc:
            "dump the always-on flight recorder (bounded ring of recent \
             span ends, gauge sets, alert firings and file-backend \
             syscall outcomes) to FILE as waveidx-flight/1 JSONL: \
             immediately on every alert firing, and once at end of run")
  in
  let concurrent =
    Arg.(
      value & flag
      & info [ "concurrent" ]
          ~doc:
            "serve each day's queries during the transition under \
             epoch-based snapshot isolation instead of after it, and \
             report mid-transition probe latency (concurrent vs. the \
             stop-the-world counterfactual)")
  in
  let query_rate =
    Arg.(
      value
      & opt float 4.0
      & info [ "query-rate" ] ~docv:"R"
          ~doc:"concurrent arrival rate, queries per model-second")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "run the sharded wave index: N router arms, each a full scheme \
             instance on its own disk over its slice of the key space, with \
             parallel cost semantics (a fan-out costs the max over arms)")
  in
  let partition =
    Arg.(
      value
      & opt partition_conv Wave_shard.Partition.Hash
      & info [ "partition" ] ~docv:"KIND"
          ~doc:"hash | range — key-space partitioning for --shards")
  in
  let query_scale =
    Arg.(
      value & opt int 1
      & info [ "query-scale" ] ~docv:"K"
          ~doc:
            "multiply the daily probe/scan counts by K (orders of magnitude \
             toward a million-user stream)")
  in
  let split_threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "split-threshold" ] ~docv:"RATIO"
          ~doc:
            "with --shards, split the busiest splittable arm at a day \
             boundary where the busy skew ratio exceeds $(docv)")
  in
  let series_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "series-out" ] ~docv:"FILE"
          ~doc:
            "sample every registry metric into bounded ring-buffer \
             time-series at each transition step and day boundary, and \
             dump them to FILE as waveidx-series/1 JSON at end of run")
  in
  let slos =
    Arg.(
      value
      & opt (some string) None
      & info [ "slos" ] ~docv:"FILE"
          ~doc:
            "load SLO specs (JSON: {\"slos\": [{\"name\", \"metric\", \
             \"op\", \"threshold\", \"window_days\", ...}]}) and evaluate \
             multi-window burn-rate alerts at every day boundary; breach \
             episodes join the alert report and the flight recorder")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "write the end-of-run metrics registry (plus series-derived \
             quantile/trend families) to FILE in OpenMetrics/Prometheus \
             text exposition format")
  in
  let dash =
    Arg.(
      value & flag
      & info [ "dash" ]
          ~doc:
            "with --shards, redraw a live per-arm dashboard (busy / space \
             / wave-length / fan-out sparklines) at every day boundary")
  in
  let run scheme technique w n days postings workload probes scans cache_blocks
      cache_readahead write_back alerts alerts_out profile top disk stall_after
      stall_seconds flight_recorder concurrent query_rate shards partition
      query_scale split_threshold series_out slos metrics_out dash =
    if write_back && cache_blocks = None then begin
      Printf.eprintf "sim: --write-back requires --cache-blocks\n";
      exit 2
    end;
    if alerts_out <> None && alerts = None then begin
      Printf.eprintf "sim: --alerts-out requires --alerts\n";
      exit 2
    end;
    let rules =
      match alerts with
      | None -> []
      | Some path -> (
        match Wave_obs.Alert.rules_of_file path with
        | Ok rules -> rules
        | Error e ->
          Printf.eprintf "sim: bad alert rules: %s\n" e;
          exit 2)
    in
    if dash && shards < 2 then begin
      Printf.eprintf "sim: --dash requires --shards >= 2\n";
      exit 2
    end;
    let slo_specs =
      match slos with
      | None -> []
      | Some path -> (
        match Wave_obs.Slo.specs_of_file path with
        | Ok specs -> specs
        | Error e ->
          Printf.eprintf "sim: bad slo specs: %s\n" e;
          exit 2)
    in
    (* One store feeds --series-out, --slos and the OpenMetrics
       quantile families alike; none of the flags -> no store, and the
       runner samples nothing. *)
    let series_store =
      if series_out <> None || metrics_out <> None || slo_specs <> [] || dash
      then Some (Wave_obs.Series.create ())
      else None
    in
    let write_series_dump () =
      match (series_out, series_store) with
      | Some path, Some st ->
        let oc = open_out path in
        output_string oc
          (Wave_obs.Json.to_string ~pretty:true (Wave_obs.Series.to_json st));
        output_char oc '\n';
        close_out oc;
        (* Self-check: the dump must pass its own schema validation. *)
        (match Wave_obs.Sink.validate_series_file path with
        | Ok points ->
          Printf.printf "wrote %s: %d series point(s) over %d metric(s)\n" path
            points
            (List.length (Wave_obs.Series.names st))
        | Error e ->
          Printf.eprintf "sim: invalid series dump %s: %s\n" path e;
          exit 1)
      | _ -> ()
    in
    let write_openmetrics () =
      match metrics_out with
      | None -> ()
      | Some path ->
        let text = Wave_obs.Sink.openmetrics ?series:series_store () in
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        (match Wave_obs.Sink.validate_openmetrics_file path with
        | Ok samples ->
          Printf.printf "wrote %s: %d OpenMetrics sample(s)\n" path samples
        | Error e ->
          Printf.eprintf "sim: invalid OpenMetrics exposition %s: %s\n" path e;
          exit 1)
    in
    let store, dist =
      match workload with
      | `Netnews ->
        ( Wave_workload.Netnews.store
            {
              Wave_workload.Netnews.default_config with
              Wave_workload.Netnews.mean_postings = postings;
            },
          Wave_workload.Query_gen.Zipfian { vocab = 5_000; s = 1.0 } )
      | `Tpcd ->
        ( Wave_workload.Tpcd.store
            {
              Wave_workload.Tpcd.default_config with
              Wave_workload.Tpcd.mean_rows = postings;
            },
          Wave_workload.Query_gen.Uniform 1_000 )
    in
    let queries =
      {
        Wave_workload.Query_gen.seed = 99;
        probes_per_day = probes;
        probe_range = Wave_workload.Query_gen.Whole_window;
        scans_per_day = scans;
        scan_range = Wave_workload.Query_gen.Whole_window;
        value_dist = dist;
      }
    in
    if query_scale < 1 then begin
      Printf.eprintf "sim: --query-scale must be >= 1\n";
      exit 2
    end;
    let queries = Wave_workload.Query_gen.scale queries ~factor:query_scale in
    let icfg =
      {
        Wave_storage.Index.default_config with
        Wave_storage.Index.cache_blocks;
        cache_readahead;
        cache_write_back = write_back;
        disk_backend = disk;
      }
    in
    if shards > 1 then begin
      (* The sharded path: a Router over N arms, each on its own
         simulated disk — one block file cannot back N independent
         arms, and the runner-side machinery (alerts, profiling,
         epoch-interleaved serving) stays single-disk for now. *)
      if disk <> Wave_disk.Disk.Sim then begin
        Printf.eprintf "sim: --shards supports the sim disk backend only\n";
        exit 2
      end;
      if concurrent || alerts <> None || profile || stall_after <> None then begin
        Printf.eprintf
          "sim: --shards composes with the query flags only (not \
           --concurrent/--alerts/--profile/--stall-after)\n";
        exit 2
      end;
      let vocab =
        match dist with
        | Wave_workload.Query_gen.Zipfian { vocab; _ } -> vocab
        | Wave_workload.Query_gen.Uniform n -> n
      in
      let router =
        Wave_shard.Router.create ~icfg ~technique ~kind:scheme ~partition
          ~shards ~vocab ~store ~w ~n ()
      in
      let slo_engine =
        match slo_specs with
        | [] -> None
        | specs -> Some (Wave_obs.Slo.create specs)
      in
      let draw_dash st day =
        let arms = Wave_shard.Router.arms router in
        let clock = Wave_shard.Router.clock router in
        (* Redraw in place on a terminal; append frames when piped so
           smoke runs and CI logs stay readable. *)
        if Unix.isatty Unix.stdout then print_string "\027[H\027[2J";
        Printf.printf "wave dash  day %d  arms %d  splits %d  skew %.2f\n" day
          arms
          (Wave_shard.Router.splits router)
          (Wave_model.Parallel.skew_ratio clock);
        let spark name = Wave_obs.Series.sparkline ~width:24 st name in
        for i = 0 to arms - 1 do
          let g fmt = Printf.sprintf fmt i in
          let last name =
            match Wave_obs.Metrics.lookup name with
            | Some (`Gauge v) -> v
            | _ -> 0.0
          in
          Printf.printf "arm %d  busy %s %8.2fs  space %s %8.0fB  wave %s %3.0fd\n"
            i
            (spark (g "shard.%d.busy_seconds"))
            (last (g "shard.%d.busy_seconds"))
            (spark (g "shard.%d.space_bytes"))
            (last (g "shard.%d.space_bytes"))
            (spark (g "shard.%d.wave_length"))
            (last (g "shard.%d.wave_length"))
        done;
        Printf.printf "fan-out mean %s  p95 %s\n"
          (spark "shard.fanout.mean")
          (spark "shard.fanout.p95");
        flush stdout
      in
      let on_day day =
        Option.iter (fun st -> Wave_obs.Series.sample st ~day) series_store;
        (match (slo_engine, series_store) with
        | Some eng, Some st -> ignore (Wave_obs.Slo.eval eng ~series:st ~day)
        | _ -> ());
        if dash then Option.iter (fun st -> draw_dash st day) series_store
      in
      let on_day = if series_store = None then None else Some on_day in
      let res =
        Wave_shard.Router.run ?split_threshold ?on_day router ~spec:queries
          ~days
      in
      Printf.printf
        "scheme=%s technique=%s W=%d n=%d days=%d shards=%d partition=%s\n"
        (Scheme.name scheme)
        (Env.technique_name technique)
        w n days shards
        (Wave_shard.Partition.kind_name partition);
      Printf.printf "queries served     %10d (%dx scaled)\n"
        res.Wave_shard.Router.queries query_scale;
      Printf.printf "query makespan     %10.4f model-seconds (parallel)\n"
        res.Wave_shard.Router.query_makespan_s;
      Printf.printf "query serial cost  %10.4f model-seconds (one-disk twin)\n"
        res.Wave_shard.Router.query_serial_s;
      Printf.printf "maintenance        %10.4f model-seconds (parallel)\n"
        res.Wave_shard.Router.maintenance_makespan_s;
      Printf.printf "throughput         %10.1f queries/model-second\n"
        res.Wave_shard.Router.throughput_qps;
      Printf.printf "parallel speedup   %10.2fx over %d arms\n"
        res.Wave_shard.Router.speedup
        (Wave_shard.Router.arms router);
      Printf.printf "busy skew ratio    %10.2f (max arm / mean arm)\n"
        res.Wave_shard.Router.skew;
      Printf.printf "splits committed   %10d\n" res.Wave_shard.Router.splits_done;
      let clock = Wave_shard.Router.clock router in
      let rows =
        List.init (Wave_shard.Router.arms router) (fun i ->
            let s = Wave_shard.Router.arm_scheme router i in
            [
              string_of_int i;
              Printf.sprintf "%.4f" (Wave_model.Parallel.busy_arm clock i);
              string_of_int (Scheme.allocated_bytes s);
              string_of_int (Frame.length (Scheme.frame s));
            ])
      in
      print_string
        (Wave_util.Table_print.render
           ~header:[ "arm"; "busy(model-s)"; "space(bytes)"; "wave(days)" ]
           ~rows);
      (match Wave_obs.Metrics.lookup "shard.fanout" with
      | Some (`Histogram (Some h)) ->
        Printf.printf
          "fan-out            mean %.2f  p95 %.0f  p99 %.0f  max %.0f over %d \
           fan-outs\n"
          h.Wave_obs.Metrics.mean h.Wave_obs.Metrics.p95
          h.Wave_obs.Metrics.p99 h.Wave_obs.Metrics.max
          h.Wave_obs.Metrics.count
      | _ -> ());
      (match slo_engine with
      | None -> ()
      | Some eng ->
        let events = Wave_obs.Slo.events eng in
        Printf.printf "\nslos: %d spec(s), %d episode(s)\n"
          (List.length slo_specs) (List.length events);
        List.iter
          (fun (e : Wave_obs.Alert.event) ->
            let rl = e.Wave_obs.Alert.e_rule in
            Printf.printf
              "  %-24s %s %s %g: fired day %d, last day %d, %s (burn %g)\n"
              rl.Wave_obs.Alert.name rl.Wave_obs.Alert.metric
              (Wave_obs.Alert.comparator_name rl.Wave_obs.Alert.comparator)
              rl.Wave_obs.Alert.threshold e.Wave_obs.Alert.fired_day
              e.Wave_obs.Alert.last_day
              (match e.Wave_obs.Alert.resolved_day with
              | None -> "still active"
              | Some d -> Printf.sprintf "resolved day %d" d)
              e.Wave_obs.Alert.value)
          events);
      write_series_dump ();
      write_openmetrics ();
      exit 0
    end;
    if profile then begin
      Wave_obs.Trace.enable ();
      Wave_obs.Trace.reset ()
    end;
    Wave_obs.Recorder.clear ();
    Wave_obs.Recorder.set_dump_path flight_recorder;
    let run_env = ref None in
    let on_env env =
      run_env := Some env;
      match stall_after with
      | None -> ()
      | Some k ->
        Wave_disk.Disk.arm_fault env.Env.disk
          ~mode:(Wave_disk.Disk.Stall stall_seconds)
          { Wave_disk.Disk.target = Wave_disk.Disk.On_write; at = k }
    in
    let r =
      Wave_sim.Runner.run
        {
          (Wave_sim.Runner.default_config ~scheme ~store ~w ~n) with
          Wave_sim.Runner.technique;
          run_days = days;
          queries = Some queries;
          concurrent;
          query_rate;
          icfg;
          alerts = rules;
          series = series_store;
          slos = slo_specs;
          on_env = Some on_env;
        }
    in
    (match !run_env with
    | Some env -> Wave_disk.Disk.close env.Env.disk
    | None -> ());
    let prof =
      if profile then begin
        let spans = Wave_obs.Trace.spans () in
        Wave_obs.Trace.disable ();
        Wave_obs.Trace.reset ();
        Some (Wave_obs.Profile.of_spans spans)
      end
      else None
    in
    Printf.printf "scheme=%s technique=%s W=%d n=%d days=%d\n" (Scheme.name scheme)
      (Env.technique_name technique) w n days;
    Printf.printf "total maintenance  %10.4f model-seconds\n"
      r.Wave_sim.Runner.total_maintenance_seconds;
    Printf.printf "total queries      %10.4f model-seconds\n"
      r.Wave_sim.Runner.total_query_seconds;
    Printf.printf "total work         %10.4f model-seconds\n"
      r.Wave_sim.Runner.total_work_seconds;
    Printf.printf "avg space          %10.0f bytes\n" r.Wave_sim.Runner.avg_space_bytes;
    Printf.printf "peak space         %10d bytes\n" r.Wave_sim.Runner.max_space_bytes;
    let avg f =
      List.fold_left (fun a d -> a +. f d) 0.0 r.Wave_sim.Runner.days
      /. float_of_int (List.length r.Wave_sim.Runner.days)
    in
    Printf.printf "avg transition     %10.4f model-seconds/day\n"
      (avg (fun d -> d.Wave_sim.Runner.transition_seconds));
    Printf.printf "avg pre-compute    %10.4f model-seconds/day\n"
      (avg (fun d -> d.Wave_sim.Runner.precompute_seconds));
    Printf.printf "avg wave length    %10.1f days\n"
      (avg (fun d -> float_of_int d.Wave_sim.Runner.wave_length));
    let pp_pct label (p : Wave_sim.Runner.percentiles) =
      Printf.printf "%s  p50 %.4f  p95 %.4f  p99 %.4f model-seconds/day\n" label
        p.Wave_sim.Runner.p50 p.Wave_sim.Runner.p95 p.Wave_sim.Runner.p99
    in
    pp_pct "transition latency" r.Wave_sim.Runner.transition_percentiles;
    pp_pct "query latency     " r.Wave_sim.Runner.query_percentiles;
    (match r.Wave_sim.Runner.concurrent with
    | None -> ()
    | Some cs ->
      Printf.printf
        "mid-transition     %d queries (%d snapshot, %d drained, %d queued) \
         at %g/model-s\n"
        cs.Wave_sim.Runner.mid_queries cs.Wave_sim.Runner.snapshot_served
        cs.Wave_sim.Runner.drained_served cs.Wave_sim.Runner.queued_served
        query_rate;
      let pp_lat label (p : Wave_sim.Runner.percentiles) =
        Printf.printf "%s  p50 %.4f  p95 %.4f  p99 %.4f model-seconds\n" label
          p.Wave_sim.Runner.p50 p.Wave_sim.Runner.p95 p.Wave_sim.Runner.p99
      in
      pp_lat "  concurrent      " cs.Wave_sim.Runner.concurrent_latency;
      pp_lat "  stop-the-world  " cs.Wave_sim.Runner.stopworld_latency);
    (match r.Wave_sim.Runner.cache_stats with
    | None -> ()
    | Some cs ->
      Format.printf "buffer pool        %a@." Wave_cache.Cache.pp_stats cs);
    (match Wave_obs.Metrics.lookup "disk.stalls" with
    | Some (`Counter s) when s > 0.0 ->
      Printf.printf "injected stalls    %10.0f (%.1f model-seconds each)\n" s
        stall_seconds
    | _ -> ());
    (match disk with
    | Wave_disk.Disk.Sim -> ()
    | Wave_disk.Disk.File path ->
      Printf.printf "block file         %s\n" path;
      print_file_io_stats ());
    (if alerts = None && slo_specs = [] then ()
     else
      (* [result.alerts] carries rule events first, then SLO burn-rate
         episodes (whose [value] is the fast-window burn at fire
         time). *)
      let events = r.Wave_sim.Runner.alerts in
      Printf.printf "\nalerts: %d rule(s), %d slo(s), %d event(s)\n"
        (List.length rules) (List.length slo_specs) (List.length events);
      List.iter
        (fun (e : Wave_obs.Alert.event) ->
          let rl = e.Wave_obs.Alert.e_rule in
          Printf.printf
            "  %-24s [%s] %s %s %g: fired day %d, last day %d, %s (value %g)\n"
            rl.Wave_obs.Alert.name
            (Wave_obs.Alert.scope_name rl.Wave_obs.Alert.scope)
            rl.Wave_obs.Alert.metric
            (Wave_obs.Alert.comparator_name rl.Wave_obs.Alert.comparator)
            rl.Wave_obs.Alert.threshold e.Wave_obs.Alert.fired_day
            e.Wave_obs.Alert.last_day
            (match e.Wave_obs.Alert.resolved_day with
            | None -> "still active"
            | Some d -> Printf.sprintf "resolved day %d" d)
            e.Wave_obs.Alert.value)
        events;
      match alerts_out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc
          (Wave_obs.Json.to_string ~pretty:true
             (Wave_obs.Alert.events_json events));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path);
    write_series_dump ();
    write_openmetrics ();
    (match flight_recorder with
    | None -> Wave_obs.Recorder.set_dump_path None
    | Some path ->
      Wave_obs.Recorder.dump_to ~reason:"sim: end of run" path;
      Wave_obs.Recorder.set_dump_path None;
      (* Self-check: the dump must pass its own schema validation. *)
      (match Wave_obs.Sink.validate_flight_file path with
      | Ok events ->
        Printf.printf "wrote %s: %d flight event(s), %d dropped from the ring\n"
          path events
          (Wave_obs.Recorder.dropped ())
      | Error e ->
        Printf.eprintf "sim: invalid flight dump %s: %s\n" path e;
        exit 1));
    match prof with
    | None -> ()
    | Some prof ->
      print_top_table ~k:top "hot spots (self model-seconds)" prof;
      print_top_table ~under:[ "day"; "phase.maintenance" ] ~k:top
        "maintenance phase" prof;
      print_top_table ~under:[ "day"; "phase.query" ] ~k:top "query phase" prof
  in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(
      const run $ scheme $ technique $ w $ n $ days $ postings $ workload
      $ probes $ scans $ cache_blocks $ cache_readahead $ write_back $ alerts
      $ alerts_out $ profile $ top $ disk $ stall_after $ stall_seconds
      $ flight_recorder $ concurrent $ query_rate $ shards $ partition
      $ query_scale $ split_threshold $ series_out $ slos $ metrics_out $ dash)

let model_cmd =
  let doc =
    "Evaluate the analytic cost model (Tables 8-11) for a scenario and geometry."
  in
  let scenario =
    Arg.(
      value
      & opt (enum [ ("scam", `Scam); ("wse", `Wse); ("tpcd", `Tpcd) ]) `Scam
      & info [ "scenario" ] ~doc:"scam | wse | tpcd")
  in
  let technique =
    Arg.(
      value
      & opt technique_conv Env.Simple_shadow
      & info [ "technique" ] ~docv:"TECH" ~doc:"in-place | simple-shadow | packed-shadow")
  in
  let w = Arg.(value & opt (some int) None & info [ "window" ] ~doc:"window length (defaults to the scenario's)") in
  let n = Arg.(value & opt int 2 & info [ "indexes"; "n" ] ~doc:"constituent indexes") in
  let sf = Arg.(value & opt float 1.0 & info [ "sf" ] ~doc:"data scale factor") in
  let run scenario technique w n sf =
    let sc =
      match scenario with
      | `Scam -> Wave_model.Scenario.scam
      | `Wse -> Wave_model.Scenario.wse
      | `Tpcd -> Wave_model.Scenario.tpcd
    in
    let w = Option.value ~default:sc.Wave_model.Scenario.w w in
    let p = Wave_model.Params.scale sc.Wave_model.Scenario.params sf in
    Printf.printf "%s: W=%d n=%d SF=%.2f %s\n\n" sc.Wave_model.Scenario.name w n
      sf (Env.technique_name technique);
    Printf.printf "%-10s %14s %14s %14s %14s %12s %12s\n" "scheme" "pre(s)"
      "transition(s)" "space avg(MB)" "space max(MB)" "probe(s)" "work/day(s)";
    List.iter
      (fun scheme ->
        if Scheme.min_indexes scheme <= n then begin
          let s = Wave_model.Cost.evaluate p ~scheme ~technique ~w ~n in
          Printf.printf "%-10s %14.1f %14.1f %14.1f %14.1f %12.4f %12.0f\n"
            (Scheme.name scheme) s.Wave_model.Cost.pre_avg
            s.Wave_model.Cost.trans_avg
            (s.Wave_model.Cost.space_avg /. 1048576.0)
            (s.Wave_model.Cost.space_max /. 1048576.0)
            s.Wave_model.Cost.probe_seconds s.Wave_model.Cost.work_per_day
        end)
      Scheme.all
  in
  Cmd.v (Cmd.info "model" ~doc)
    Term.(const run $ scenario $ technique $ w $ n $ sf)

(* Deterministic Netnews store shared by the trace/checkpoint/recover/
   bench demos: the day store is the system of record, so a wave can be
   rebuilt anywhere the store is reachable. *)
let demo_store postings =
  Wave_workload.Netnews.store
    {
      Wave_workload.Netnews.default_config with
      Wave_workload.Netnews.mean_postings = postings;
    }

let demo_queries =
  {
    Wave_workload.Query_gen.seed = 99;
    probes_per_day = 20;
    probe_range = Wave_workload.Query_gen.Whole_window;
    scans_per_day = 1;
    scan_range = Wave_workload.Query_gen.Whole_window;
    value_dist = Wave_workload.Query_gen.Zipfian { vocab = 5_000; s = 1.0 };
  }

let trace_cmd =
  let doc =
    "Print a scheme's transition trace (like the paper's Tables 1-7), or, \
     with --out, run a traced simulation and write its spans as a Chrome \
     trace_event file (chrome://tracing, Perfetto) or a JSONL event log."
  in
  let scheme_pos =
    Arg.(
      value
      & pos 0 (some scheme_conv) None
      & info [] ~docv:"SCHEME" ~doc:"scheme (DEL | REINDEX | ... | RATA)")
  in
  let tech_pos =
    Arg.(
      value
      & pos 1 (some technique_conv) None
      & info [] ~docv:"TECH" ~doc:"technique (in-place | simple-shadow | packed-shadow)")
  in
  let scheme_opt =
    Arg.(
      value
      & opt scheme_conv Scheme.Del
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"scheme to trace (alias of the positional)")
  in
  let w = Arg.(value & opt int 10 & info [ "window"; "w" ] ~doc:"window length") in
  let n = Arg.(value & opt int 2 & info [ "indexes"; "n" ] ~doc:"constituent indexes") in
  let days = Arg.(value & opt int 8 & info [ "days" ] ~doc:"transitions to trace") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"run a traced simulation (with queries) and write span events here")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "format" ] ~doc:"output format for --out: chrome | jsonl")
  in
  let textual_trace scheme w n days =
    let store day =
      Wave_storage.Entry.batch_create ~day
        [|
          {
            Wave_storage.Entry.value = 1;
            entry = { Wave_storage.Entry.rid = day; day; info = 0 };
          };
        |]
    in
    let env = Env.create ~store ~w ~n () in
    let s = Scheme.start scheme env in
    let show () =
      Printf.printf "day %3d: " (Scheme.current_day s);
      for j = 1 to n do
        Printf.printf "I%d=%s  " j
          (Dayset.to_string (Frame.slot_days (Scheme.frame s) j))
      done;
      let temps = Scheme.temp_days s in
      if temps <> [] then
        Printf.printf "temps=%s"
          (String.concat " " (List.map Dayset.to_string temps));
      print_newline ()
    in
    Printf.printf "%s, W=%d, n=%d\n" (Scheme.name scheme) w n;
    show ();
    for _ = 1 to days do
      Scheme.transition s;
      show ()
    done
  in
  let traced_run scheme technique w n days path format =
    if n < 1 || n > w then begin
      Printf.eprintf "trace: need 1 <= n <= w (got W=%d n=%d)\n" w n;
      exit 2
    end;
    if n < Scheme.min_indexes scheme then begin
      Printf.eprintf "trace: %s needs at least %d constituents (got n=%d)\n"
        (Scheme.name scheme)
        (Scheme.min_indexes scheme)
        n;
      exit 2
    end;
    Wave_obs.Trace.enable ();
    Wave_obs.Trace.reset ();
    (* A JSONL target doubles as the mid-run flush sink: alert firings
       and exceptional exits write the events collected so far to the
       same path, which the end-of-run write below then replaces. *)
    (match format with
    | `Jsonl -> Wave_obs.Sink.set_flush_path (Some path)
    | `Chrome -> ());
    let r =
      Wave_sim.Runner.run
        {
          (Wave_sim.Runner.default_config ~scheme ~store:(demo_store 200) ~w ~n) with
          Wave_sim.Runner.technique;
          run_days = days;
          queries = Some demo_queries;
        }
    in
    let spans = Wave_obs.Trace.spans () in
    let instants = Wave_obs.Trace.instants () in
    Wave_obs.Trace.disable ();
    Wave_obs.Trace.reset ();
    Wave_obs.Sink.set_flush_path None;
    (match format with
    | `Chrome -> (
      Wave_obs.Sink.write_chrome ~path ~spans ~instants ();
      match Wave_obs.Sink.validate_chrome_file path with
      | Ok events ->
        Printf.printf
          "wrote %s: %d trace_event records (%d spans, %d instants) over %d days\n"
          path events (List.length spans) (List.length instants)
          (List.length r.Wave_sim.Runner.days)
      | Error e ->
        Printf.eprintf "trace: emitted file failed validation: %s\n" e;
        exit 1)
    | `Jsonl ->
      Wave_obs.Sink.write_jsonl ~path ~spans ~instants;
      Printf.printf "wrote %s: %d JSONL events over %d days\n" path
        (List.length spans + List.length instants)
        (List.length r.Wave_sim.Runner.days));
    Printf.printf "maintenance %.4f model-s, queries %.4f model-s\n"
      r.Wave_sim.Runner.total_maintenance_seconds
      r.Wave_sim.Runner.total_query_seconds
  in
  let run scheme_pos tech_pos scheme_opt w n days out format =
    let scheme = Option.value ~default:scheme_opt scheme_pos in
    let technique = Option.value ~default:Env.In_place tech_pos in
    match out with
    | None -> textual_trace scheme w n days
    | Some path -> traced_run scheme technique w n days path format
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ scheme_pos $ tech_pos $ scheme_opt $ w $ n $ days $ out $ format)

(* Run a traced simulation and fold its spans into a profile.  Returns
   the profile together with the run result so callers can cross-check
   attribution against day_metrics.  [stall_after] arms a model-time
   stall on the K-th write, so a --diff against an unstalled baseline
   attributes the slowdown to the node the stall landed in. *)
let profiled_run ?stall_after ?(stall_seconds = 30.0) ?series ~scheme
    ~technique ~w ~n ~days ~postings () =
  if n < 1 || n > w then begin
    Printf.eprintf "profile: need 1 <= n <= w (got W=%d n=%d)\n" w n;
    exit 2
  end;
  if n < Scheme.min_indexes scheme then begin
    Printf.eprintf "profile: %s needs at least %d constituents (got n=%d)\n"
      (Scheme.name scheme)
      (Scheme.min_indexes scheme)
      n;
    exit 2
  end;
  Wave_obs.Trace.enable ();
  Wave_obs.Trace.reset ();
  let on_env env =
    match stall_after with
    | None -> ()
    | Some k ->
      Wave_disk.Disk.arm_fault env.Env.disk
        ~mode:(Wave_disk.Disk.Stall stall_seconds)
        { Wave_disk.Disk.target = Wave_disk.Disk.On_write; at = k }
  in
  let r =
    Wave_sim.Runner.run
      {
        (Wave_sim.Runner.default_config ~scheme ~store:(demo_store postings) ~w ~n) with
        Wave_sim.Runner.technique;
        run_days = days;
        queries = Some demo_queries;
        series;
        on_env = Some on_env;
      }
  in
  let spans = Wave_obs.Trace.spans () in
  Wave_obs.Trace.disable ();
  Wave_obs.Trace.reset ();
  (Wave_obs.Profile.of_spans spans, r)

(* The profiler's conservation invariant: the aggregated [day] node is
   inclusive of everything day_metrics measures, so its total must
   reproduce the run's maintenance + query model-seconds. *)
let check_conservation prof (r : Wave_sim.Runner.result) =
  let expected =
    r.Wave_sim.Runner.total_maintenance_seconds
    +. r.Wave_sim.Runner.total_query_seconds
  in
  match Wave_obs.Profile.find prof [ "day" ] with
  | None ->
    Printf.eprintf "profile: no \"day\" node in the span tree\n";
    exit 1
  | Some day ->
    let diff = Float.abs (day.Wave_obs.Profile.total_model -. expected) in
    if diff > 1e-6 then begin
      Printf.eprintf
        "profile: conservation violated: day tree %.9f vs day_metrics %.9f \
         model-s (diff %.3g)\n"
        day.Wave_obs.Profile.total_model expected diff;
      exit 1
    end;
    (expected, diff)

let profile_cmd =
  let doc =
    "Profile a traced simulation: aggregate its spans into a call tree, \
     write flamegraph.pl/speedscope-compatible folded stacks (--out) and \
     optionally a JSON profile (--json), print per-phase hot-spot tables, \
     and verify cost conservation against the run's day metrics."
  in
  let scheme_pos =
    Arg.(
      value
      & pos 0 (some scheme_conv) None
      & info [] ~docv:"SCHEME" ~doc:"scheme (DEL | REINDEX | ... | RATA)")
  in
  let tech_pos =
    Arg.(
      value
      & pos 1 (some technique_conv) None
      & info [] ~docv:"TECH" ~doc:"technique (in-place | simple-shadow | packed-shadow)")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"folded-stack output path")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"also write the JSON profile here")
  in
  let w = Arg.(value & opt int 7 & info [ "window"; "w" ] ~doc:"window length") in
  let n = Arg.(value & opt int 2 & info [ "indexes"; "n" ] ~doc:"constituent indexes") in
  let days = Arg.(value & opt int 8 & info [ "days" ] ~doc:"transitions to profile") in
  let postings =
    Arg.(value & opt int 200 & info [ "postings" ] ~doc:"mean postings per day")
  in
  let top = Arg.(value & opt int 10 & info [ "top" ] ~doc:"table size (hot spots)") in
  let diff =
    Arg.(
      value
      & opt (some string) None
      & info [ "diff" ] ~docv:"BASELINE.json"
          ~doc:
            "diff this run against a baseline waveidx-profile/1 document \
             (a --json emission): trees are aligned by span-stack path \
             and the top regressing/improving nodes printed by |self \
             model-seconds delta|")
  in
  let diff_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "diff-json" ] ~docv:"FILE"
          ~doc:
            "also write the machine-readable waveidx-profile-diff/1 \
             document here (requires --diff)")
  in
  let stall_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stall-after" ] ~docv:"K"
          ~doc:
            "arm a stall fault on the K-th write of the run; with --diff \
             against an unstalled baseline, the report attributes the \
             slowdown to the node the stall landed in")
  in
  let stall_seconds =
    Arg.(
      value
      & opt float 30.0
      & info [ "stall-seconds" ] ~docv:"S" ~doc:"stall duration for --stall-after")
  in
  let run scheme_pos tech_pos out json diff diff_json stall_after stall_seconds w
      n days postings top =
    let scheme = Option.value ~default:Scheme.Del scheme_pos in
    let technique = Option.value ~default:Env.In_place tech_pos in
    if diff_json <> None && diff = None then begin
      Printf.eprintf "profile: --diff-json requires --diff\n";
      exit 2
    end;
    let prof, r =
      profiled_run ?stall_after ~stall_seconds ~scheme ~technique ~w ~n ~days
        ~postings ()
    in
    Wave_obs.Sink.write_folded ~path:out prof;
    Printf.printf "wrote %s: folded stacks for %d spans (%d nodes)\n" out
      (Wave_obs.Profile.span_count prof)
      (List.length (Wave_obs.Profile.nodes prof));
    (match json with
    | None -> ()
    | Some jpath -> (
      Wave_obs.Sink.write_profile ~path:jpath prof;
      match Wave_obs.Sink.validate_profile_file jpath with
      | Ok nodes -> Printf.printf "wrote %s: JSON profile (%d nodes)\n" jpath nodes
      | Error e ->
        Printf.eprintf "profile: emitted JSON failed validation: %s\n" e;
        exit 1));
    let expected, cons_diff = check_conservation prof r in
    Printf.printf
      "conservation: day tree reproduces %.4f model-s of day metrics (diff %.2g)\n"
      expected cons_diff;
    print_top_table ~k:top "hot spots (self model-seconds)" prof;
    print_top_table ~under:[ "day"; "phase.maintenance" ] ~k:top
      "maintenance phase" prof;
    print_top_table ~under:[ "day"; "phase.query" ] ~k:top "query phase" prof;
    match diff with
    | None -> ()
    | Some bpath ->
      let baseline =
        match In_channel.with_open_bin bpath In_channel.input_all with
        | exception Sys_error e ->
          Printf.eprintf "profile: --diff: %s\n" e;
          exit 2
        | text -> (
          match Wave_obs.Json.parse text with
          | Error e ->
            Printf.eprintf "profile: --diff %s: bad JSON: %s\n" bpath e;
            exit 2
          | Ok j -> (
            match Wave_obs.Profile.of_json j with
            | Error e ->
              Printf.eprintf "profile: --diff %s: %s\n" bpath e;
              exit 2
            | Ok p -> p))
      in
      let d = Wave_obs.Profile.diff ~baseline ~current:prof in
      print_newline ();
      print_string (Wave_obs.Profile.diff_report ~k:top d);
      (match diff_json with
      | None -> ()
      | Some dpath ->
        let oc = open_out dpath in
        output_string oc
          (Wave_obs.Json.to_string ~pretty:true (Wave_obs.Profile.diff_json d));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" dpath)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ scheme_pos $ tech_pos $ out $ json $ diff $ diff_json
      $ stall_after $ stall_seconds $ w $ n $ days $ postings $ top)

let bench_cmd =
  let doc =
    "Deterministic micro-benchmarks on the simulated disk: per-scheme \
     probe, scan and transition latencies (model seconds), with p50/p95 \
     over many runs.  --json writes a machine-readable snapshot \
     (BENCH_wave.json) that is stable across machines because it measures \
     the disk model, not wall clock."
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"write results as JSON to $(docv)")
  in
  let runs =
    Arg.(value & opt int 40 & info [ "runs" ] ~doc:"measurement runs per benchmark")
  in
  let w = Arg.(value & opt int 7 & info [ "window"; "w" ] ~doc:"window length") in
  let n = Arg.(value & opt int 3 & info [ "indexes"; "n" ] ~doc:"constituents") in
  let postings =
    Arg.(value & opt int 200 & info [ "postings" ] ~doc:"mean postings per day")
  in
  let cache_blocks =
    Arg.(
      value & opt int 4096
      & info [ "cache-blocks" ] ~docv:"N"
          ~doc:"buffer-pool frames for the cached (+cache) series")
  in
  let validate =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate" ] ~docv:"PATH"
          ~doc:
            "validate an existing bench snapshot against the current \
             schema instead of running benchmarks (exit 1 on failure)")
  in
  let compare_to =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"BASELINE"
          ~doc:
            "regression gate: compare this run's p50/p95 per series against \
             a committed snapshot; exit 1 on regressions beyond --threshold \
             or vanished series")
  in
  let threshold =
    Arg.(
      value & opt float 10.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"allowed p50/p95 growth percentage for --compare")
  in
  let run json runs w n postings cache_blocks validate compare_to threshold =
    (match validate with
    | Some path -> (
      match Wave_obs.Sink.validate_bench_file path with
      | Ok count ->
        Printf.printf "%s: valid %s snapshot (%d benchmarks)\n" path
          Wave_obs.Sink.bench_schema count;
        exit 0
      | Error e ->
        Printf.eprintf "%s: invalid bench snapshot: %s\n" path e;
        exit 1)
    | None -> ());
    if runs < 1 then begin
      Printf.eprintf "bench: need at least one run\n";
      exit 2
    end;
    if n < 1 || n > w then begin
      Printf.eprintf "bench: need 1 <= n <= w (got W=%d n=%d)\n" w n;
      exit 2
    end;
    if cache_blocks < 1 then begin
      Printf.eprintf "bench: need at least one cache frame\n";
      exit 2
    end;
    let store = demo_store postings in
    let results = ref [] in
    let record ?cache ?wb name samples =
      let xs = Array.of_list samples in
      results :=
        ( name,
          Wave_util.Stats.percentile xs 50.0,
          Wave_util.Stats.percentile xs 95.0,
          Array.length xs,
          cache,
          wb )
        :: !results
    in
    let cached_icfg =
      {
        Wave_storage.Index.default_config with
        Wave_storage.Index.cache_blocks = Some cache_blocks;
        cache_readahead = 8;
      }
    in
    let wb_icfg =
      { cached_icfg with Wave_storage.Index.cache_write_back = true }
    in
    let time_on disk f =
      let before = Wave_disk.Disk.elapsed disk in
      ignore (f ());
      Wave_disk.Disk.elapsed disk -. before
    in
    List.iter
      (fun scheme ->
        if Scheme.min_indexes scheme <= n then begin
          let sname = Scheme.name scheme in
          (* Query-side benchmarks against a steady-state wave. *)
          let env = Env.create ~store ~w ~n () in
          let s = Scheme.start scheme env in
          Scheme.advance_to s (2 * w);
          let disk = env.Env.disk in
          let frame = Scheme.frame s in
          let d = Scheme.current_day s in
          let prng = Wave_util.Prng.create 17 in
          let zipf = Wave_util.Zipf.create ~n:5_000 ~s:1.0 in
          record
            (Printf.sprintf "probe/%s" sname)
            (List.init runs (fun _ ->
                 let value = Wave_util.Zipf.sample zipf prng in
                 time_on disk (fun () ->
                     Frame.timed_index_probe frame ~t1:(d - w + 1) ~t2:d ~value)));
          record
            (Printf.sprintf "scan/%s" sname)
            (List.init
               (max 5 (runs / 4))
               (fun i ->
                 let t1 = d - w + 1 + (i mod w) in
                 time_on disk (fun () ->
                     Frame.timed_segment_scan frame ~t1 ~t2:d)));
          (* Cached twins of the query benchmarks: same steady state,
             same PRNG streams, with a buffer pool attached.  A first
             un-recorded pass warms the pool, then hit ratios are read
             off the measured pass's counter deltas. *)
          let env = Env.create ~icfg:cached_icfg ~store ~w ~n () in
          let s = Scheme.start scheme env in
          Scheme.advance_to s (2 * w);
          let disk = env.Env.disk in
          let frame = Scheme.frame s in
          let d = Scheme.current_day s in
          let pool = Option.get (Wave_cache.Cache.find disk) in
          let measure_cached name samples =
            let s0 = Wave_cache.Cache.stats pool in
            let xs = samples () in
            let s1 = Wave_cache.Cache.stats pool in
            let hits = s1.Wave_cache.Cache.hits - s0.Wave_cache.Cache.hits in
            let misses =
              s1.Wave_cache.Cache.misses - s0.Wave_cache.Cache.misses
            in
            let ratio =
              Wave_util.Stats.ratio (float_of_int hits)
                (float_of_int (hits + misses))
            in
            record ~cache:(ratio, hits, misses) name xs
          in
          let probe_pass record_it =
            let prng = Wave_util.Prng.create 17 in
            let samples =
              List.init runs (fun _ ->
                  let value = Wave_util.Zipf.sample zipf prng in
                  time_on disk (fun () ->
                      Frame.timed_index_probe frame ~t1:(d - w + 1) ~t2:d
                        ~value))
            in
            if record_it then samples else []
          in
          let scan_pass record_it =
            let samples =
              List.init
                (max 5 (runs / 4))
                (fun i ->
                  let t1 = d - w + 1 + (i mod w) in
                  time_on disk (fun () ->
                      Frame.timed_segment_scan frame ~t1 ~t2:d))
            in
            if record_it then samples else []
          in
          ignore (probe_pass false);
          ignore (scan_pass false);
          measure_cached
            (Printf.sprintf "probe+cache/%s" sname)
            (fun () -> probe_pass true);
          measure_cached
            (Printf.sprintf "scan+cache/%s" sname)
            (fun () -> scan_pass true);
          (* Maintenance-side benchmarks: one sample per simulated day. *)
          List.iter
            (fun technique ->
              let env = Env.create ~store ~technique ~w ~n () in
              let s = Scheme.start scheme env in
              Scheme.advance_to s (2 * w);
              let disk = env.Env.disk in
              record
                (Printf.sprintf "transition/%s/%s" sname
                   (Env.technique_name technique))
                (List.init runs (fun _ ->
                     time_on disk (fun () -> Scheme.transition s))))
            [ Env.In_place; Env.Packed_shadow ];
          (* Write-back twins of the transition benchmarks: each sample
             is a transition plus its flush drain, so the timing
             includes the coalesced deferred writes — the comparison
             the paper's Tables 8-11 charge uncoalesced. *)
          List.iter
            (fun technique ->
              let env = Env.create ~icfg:wb_icfg ~store ~technique ~w ~n () in
              let s = Scheme.start scheme env in
              Scheme.advance_to s (2 * w);
              let disk = env.Env.disk in
              let pool = Option.get (Wave_cache.Cache.find disk) in
              let s0 = Wave_cache.Cache.stats pool in
              let samples =
                List.init runs (fun _ ->
                    time_on disk (fun () ->
                        Scheme.transition s;
                        Wave_cache.Cache.flush pool))
              in
              let s1 = Wave_cache.Cache.stats pool in
              record
                ~wb:
                  ( s1.Wave_cache.Cache.writes_coalesced
                    - s0.Wave_cache.Cache.writes_coalesced,
                    s1.Wave_cache.Cache.flushes - s0.Wave_cache.Cache.flushes,
                    s1.Wave_cache.Cache.flushed_blocks
                    - s0.Wave_cache.Cache.flushed_blocks )
                (Printf.sprintf "transition+wb/%s/%s" sname
                   (Env.technique_name technique))
                samples;
              Wave_cache.Cache.detach disk)
            [ Env.In_place; Env.Packed_shadow ];
          (* Real-I/O twin of the in-place transition benchmark: the
             same disk over a real block file, each sample measured in
             wall seconds (syscalls included, fsync'd per transition).
             Unlike every other series these numbers are machine-
             dependent; they live under the transition+file/ prefix so
             a baseline diff can treat them accordingly. *)
          let blocks = Filename.temp_file "waveidx_bench" ".blocks" in
          let icfg =
            {
              Wave_storage.Index.default_config with
              Wave_storage.Index.disk_backend = Wave_disk.Disk.File blocks;
            }
          in
          let disk = Wave_storage.Index.make_disk icfg in
          let env = Env.create ~disk ~icfg ~store ~w ~n () in
          let s = Scheme.start scheme env in
          Scheme.advance_to s (2 * w);
          record
            (Printf.sprintf "transition+file/%s/in-place" sname)
            (List.init runs (fun _ ->
                 let t0 = Unix.gettimeofday () in
                 Scheme.transition s;
                 Wave_disk.Disk.fsync disk;
                 Unix.gettimeofday () -. t0));
          Wave_disk.Disk.close disk;
          (try Sys.remove blocks with Sys_error _ -> ());
          (try Sys.remove (blocks ^ ".alloc") with Sys_error _ -> ());
          (* Concurrent-serving twin of the probe benchmark: a full
             simulated run (simple shadow) with query arrivals
             interleaved into each transition's disk schedule under
             epoch snapshot isolation.  Samples are the mid-transition
             arrival-to-completion latencies; probe+stopworld is the
             counterfactual for the same arrival schedule — the
             transition running alone, then the queued probes serially
             behind it. *)
          let r =
            Wave_sim.Runner.run
              {
                (Wave_sim.Runner.default_config ~scheme ~store ~w ~n) with
                Wave_sim.Runner.technique = Env.Simple_shadow;
                run_days = 2 * w;
                queries = Some demo_queries;
                concurrent = true;
                query_rate = 200.0;
              }
          in
          match r.Wave_sim.Runner.concurrent with
          | Some c when Array.length c.Wave_sim.Runner.concurrent_samples > 0 ->
            record
              (Printf.sprintf "probe+concurrent/%s" sname)
              (Array.to_list c.Wave_sim.Runner.concurrent_samples);
            record
              (Printf.sprintf "probe+stopworld/%s" sname)
              (Array.to_list c.Wave_sim.Runner.stopworld_samples)
          | _ ->
            Printf.eprintf
              "bench: %s served no mid-transition queries; concurrent series \
               skipped\n"
              sname
        end)
      Scheme.all;
    (* Sharded throughput scaling (required bench series): the same Zipf
       probe stream fanned over 1/2/4/8 hash arms.  Each sample is the
       makespan of a 32-probe chunk divided by the chunk size — the
       effective per-probe latency when arms serve their share of the
       chunk concurrently — so p50 falling with the arm count IS the
       throughput scaling curve (4 arms must at least halve the 1-arm
       latency; the shard.scaling test asserts it). *)
    List.iter
      (fun shards ->
        let router =
          Wave_shard.Router.create ~kind:Scheme.Del
            ~partition:Wave_shard.Partition.Hash ~shards ~vocab:5_000 ~store
            ~w ~n ()
        in
        while Wave_shard.Router.current_day router < 2 * w do
          ignore (Wave_shard.Router.advance router)
        done;
        let d = Wave_shard.Router.current_day router in
        let prng = Wave_util.Prng.create 17 in
        let zipf = Wave_util.Zipf.create ~n:5_000 ~s:1.0 in
        let chunk = 32 in
        record
          (Printf.sprintf "throughput+shards/%d" shards)
          (List.init runs (fun _ ->
               let before =
                 Array.init (Wave_shard.Router.arms router) (fun i ->
                     Wave_disk.Disk.elapsed (Wave_shard.Router.arm_disk router i))
               in
               for _ = 1 to chunk do
                 let value = Wave_util.Zipf.sample zipf prng in
                 ignore
                   (Wave_shard.Router.probe router ~value ~t1:(d - w + 1) ~t2:d)
               done;
               let makespan =
                 Array.fold_left Float.max 0.0
                   (Array.mapi
                      (fun i b ->
                        Wave_disk.Disk.elapsed
                          (Wave_shard.Router.arm_disk router i)
                        -. b)
                      before)
               in
               makespan /. float_of_int chunk)))
      [ 1; 2; 4; 8 ];
    let results = List.rev !results in
    Printf.printf "%-34s %12s %12s %6s %10s %22s\n" "benchmark" "p50(ms)"
      "p95(ms)" "runs" "hit-ratio" "write-back";
    List.iter
      (fun (name, p50, p95, r, cache, wb) ->
        Printf.printf "%-34s %12.4f %12.4f %6d %10s %22s\n" name (p50 *. 1e3)
          (p95 *. 1e3) r
          (match cache with
          | None -> "-"
          | Some (ratio, _, _) -> Printf.sprintf "%.3f" ratio)
          (match wb with
          | None -> "-"
          | Some (coalesced, flushes, blocks) ->
            Printf.sprintf "c=%d f=%d b=%d" coalesced flushes blocks))
      results;
    (match json with
    | None -> ()
    | Some path ->
      (* The /4 schema carries a profile summary: where a canonical
         traced run (DEL, in-place) spends its model-seconds, so a
         snapshot diff shows cost-attribution drift, not just endpoint
         latencies. *)
      let bench_series_store = Wave_obs.Series.create () in
      let prof, pr =
        profiled_run ~series:bench_series_store ~scheme:Scheme.Del
          ~technique:Env.In_place ~w ~n:2 ~days:6 ~postings ()
      in
      ignore (check_conservation prof pr);
      let open Wave_obs.Json in
      (* The /7 series block: per-metric time-series summaries from the
         same canonical run the profile block measures, so a snapshot
         diff can show trajectory drift (a metric trending up across
         the run) on top of endpoint and attribution drift. *)
      let series_json =
        let tracked =
          List.filter_map
            (fun name ->
              match
                Wave_obs.Series.window_stats bench_series_store name ~n:max_int
              with
              | None -> None
              | Some ws ->
                let last =
                  match Wave_obs.Series.last_n bench_series_store name 1 with
                  | [ p ] -> p.Wave_obs.Series.value
                  | _ -> ws.Wave_obs.Series.w_mean
                in
                let trend =
                  match
                    Wave_obs.Series.trend bench_series_store name ~n:max_int
                  with
                  | Some s when Float.is_finite s -> Num s
                  | _ -> Null
                in
                if
                  Float.is_finite last
                  && Float.is_finite ws.Wave_obs.Series.w_mean
                  && Float.is_finite ws.Wave_obs.Series.w_p95
                then
                  Some
                    (Obj
                       [
                         ("name", Str name);
                         ("points", int ws.Wave_obs.Series.w_count);
                         ("last", Num last);
                         ("mean", Num ws.Wave_obs.Series.w_mean);
                         ("p95", Num ws.Wave_obs.Series.w_p95);
                         ("trend", trend);
                       ])
                else None)
            (Wave_obs.Series.names bench_series_store)
        in
        Obj
          [
            ("schema", Str Wave_obs.Sink.series_schema);
            ("ticks", int (Wave_obs.Series.tick bench_series_store));
            ("tracked", Arr tracked);
          ]
      in
      let profile_json =
        Obj
          [
            ("scheme", Str (Scheme.name Scheme.Del));
            ("technique", Str (Env.technique_name Env.In_place));
            ("days", int (List.length pr.Wave_sim.Runner.days));
            ("total_model_s", Num (Wave_obs.Profile.total_model prof));
            ( "top",
              Arr
                (List.map
                   (fun nd ->
                     Obj
                       [
                         ("path", Str (Wave_obs.Profile.path_string nd));
                         ("calls", int nd.Wave_obs.Profile.calls);
                         ("self_model_s", Num nd.Wave_obs.Profile.self_model);
                         ("total_model_s", Num nd.Wave_obs.Profile.total_model);
                         ("seeks", int nd.Wave_obs.Profile.seeks);
                       ])
                   (Wave_obs.Profile.top_self ~k:8 prof)) );
          ]
      in
      let j =
        Obj
          [
            ("schema", Str Wave_obs.Sink.bench_schema);
            ("unit", Str "model-seconds");
            ( "config",
              Obj
                [
                  ("w", int w);
                  ("n", int n);
                  ("postings", int postings);
                  ("runs", int runs);
                  ("cache_blocks", int cache_blocks);
                ] );
            ("profile", profile_json);
            ("series", series_json);
            ( "benchmarks",
              Arr
                (List.map
                   (fun (name, p50, p95, r, cache, wb) ->
                     Obj
                       ([
                          ("name", Str name);
                          ("p50", Num p50);
                          ("p95", Num p95);
                          ("runs", int r);
                        ]
                       @ (match cache with
                         | None -> []
                         | Some (ratio, hits, misses) ->
                           [
                             ( "cache",
                               Obj
                                 [
                                   ("hit_ratio", Num ratio);
                                   ("hits", int hits);
                                   ("misses", int misses);
                                   ("frames", int cache_blocks);
                                 ] );
                           ])
                       @
                       match wb with
                       | None -> []
                       | Some (coalesced, flushes, blocks) ->
                         [
                           ( "writeback",
                             Obj
                               [
                                 ("writes_coalesced", int coalesced);
                                 ("flushes", int flushes);
                                 ("flushed_blocks", int blocks);
                               ] );
                         ]))
                   results) );
          ]
      in
      let oc = open_out path in
      output_string oc (to_string ~pretty:true j);
      output_char oc '\n';
      close_out oc;
      (match Wave_obs.Sink.validate_bench j with
      | Ok _ -> ()
      | Error e ->
        Printf.eprintf "bench: emitted snapshot failed validation: %s\n" e;
        exit 1);
      Printf.printf "\nwrote %s (%d benchmarks)\n" path (List.length results));
    match compare_to with
    | None -> ()
    | Some baseline_path -> (
      let fail msg =
        Printf.eprintf "bench --compare: %s\n" msg;
        exit 1
      in
      match Wave_obs.Sink.bench_series_file baseline_path with
      | Error e -> fail e
      | Ok baseline ->
          let current =
            List.map
              (fun (name, p50, p95, _, _, _) ->
                {
                  Wave_obs.Sink.series_name = name;
                  series_p50 = p50;
                  series_p95 = p95;
                })
              results
          in
          let cmp =
            Wave_obs.Sink.compare_bench ~threshold_pct:threshold ~baseline
              ~current
          in
          Printf.printf "\nregression gate vs %s (threshold %.1f%%):\n%s"
            baseline_path threshold
            (Wave_obs.Sink.comparison_report cmp);
          (* Profile-node gate: re-profile the snapshot's canonical run
             and hold each committed hot node's self/total model-seconds
             to the same threshold — a cost migration between phases
             fails here even when every series total is flat.  On
             failure, a full tree diff against the committed nodes shows
             where the time went. *)
          let profile_ok =
            match Wave_obs.Sink.bench_profile_top_file baseline_path with
            | Error e ->
              (* pre-/4 baselines have no profile block; the series gate
                 above already covers them *)
              Printf.printf "profile-node gate: skipped (%s)\n" e;
              true
            | Ok top_nodes ->
              let prof, pr =
                profiled_run ~scheme:Scheme.Del ~technique:Env.In_place ~w ~n:2
                  ~days:6 ~postings ()
              in
              ignore (check_conservation prof pr);
              let gate =
                Wave_obs.Sink.compare_profile_top ~threshold_pct:threshold
                  ~baseline:top_nodes ~current:prof
              in
              print_string (Wave_obs.Sink.profile_gate_report gate);
              Wave_obs.Sink.profile_gate_ok gate
          in
          if not (Wave_obs.Sink.bench_ok cmp && profile_ok) then exit 1)
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const run $ json $ runs $ w $ n $ postings $ cache_blocks $ validate
      $ compare_to $ threshold)

let checkpoint_cmd =
  let doc = "Run a scheme for some days, then write its manifest to a file." in
  let scheme =
    Arg.(value & opt scheme_conv Scheme.Wata_star & info [ "scheme" ] ~docv:"SCHEME" ~doc:"scheme")
  in
  let w = Arg.(value & opt int 7 & info [ "window" ] ~doc:"window length") in
  let n = Arg.(value & opt int 3 & info [ "indexes"; "n" ] ~doc:"constituents") in
  let days = Arg.(value & opt int 20 & info [ "days" ] ~doc:"days to run") in
  let out =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"manifest path")
  in
  let run scheme w n days out =
    let env = Env.create ~store:(demo_store 200) ~w ~n () in
    let s = Scheme.start scheme env in
    Scheme.advance_to s (w + days);
    let m = Manifest.capture s in
    let oc = open_out out in
    output_string oc (Manifest.to_string m);
    close_out oc;
    Printf.printf "checkpointed %s at day %d into %s\n" (Scheme.name scheme)
      (Scheme.current_day s) out
  in
  Cmd.v (Cmd.info "checkpoint" ~doc) Term.(const run $ scheme $ w $ n $ days $ out)

let recover_cmd =
  let doc = "Rebuild a wave index from a manifest file and report its state." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST" ~doc:"manifest path")
  in
  let run file =
    let ic = open_in file in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match Manifest.of_string contents with
    | Error e ->
      Printf.eprintf "bad manifest: %s\n" e;
      exit 1
    | Ok m ->
      let env = Env.create ~store:(demo_store 200) ~w:m.Manifest.w ~n:m.Manifest.n () in
      let frame = Manifest.restore_frame m env in
      Frame.validate frame;
      Printf.printf "recovered %s wave at day %d: %d constituents, %d entries, days %s\n"
        (Scheme.name m.Manifest.scheme) m.Manifest.day (Frame.n frame)
        (Frame.entry_count frame)
        (Dayset.to_string (Frame.covered_days frame))
  in
  Cmd.v (Cmd.info "recover" ~doc) Term.(const run $ file)

let crashtest_cmd =
  let doc =
    "Crash-consistency sweep: inject a fault at every seek and write of a \
     transition, recover, and check the wave answers queries like an \
     uncrashed twin.  Prints a scheme x technique pass/fail matrix."
  in
  let w = Arg.(value & opt int 6 & info [ "window"; "w" ] ~doc:"window length") in
  let n = Arg.(value & opt int 3 & info [ "indexes"; "n" ] ~doc:"constituents") in
  let days =
    Arg.(
      value & opt int 3
      & info [ "days" ] ~doc:"number of consecutive transitions to sweep")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"per-point detail")
  in
  let cache_blocks =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-blocks" ] ~docv:"N"
          ~doc:"run the sweep with an N-frame buffer pool attached")
  in
  let write_back =
    Arg.(
      value & flag
      & info [ "write-back" ]
          ~doc:
            "sweep with the pool in write-back mode (adds flush / \
             dirty-pool fault points); requires --cache-blocks")
  in
  let kill_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "kill" ] ~docv:"DIR"
          ~doc:
            "kill-and-recover mode: run every instance on a real file-backed \
             disk in its own checkpoint directory under DIR, crash by \
             killing the process state (close the block file, drop all \
             memory), and recover with Checkpoint.reopen from the surviving \
             files alone; failing points keep their directories as \
             artifacts")
  in
  let double =
    Arg.(
      value & flag
      & info [ "double" ]
          ~doc:
            "additionally sweep double faults: crash the transition, then \
             crash recovery itself at its own enumerated points, then \
             recover again (proves recovery is re-entrant)")
  in
  let artifacts =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts" ] ~docv:"DIR"
          ~doc:
            "simulated sweeps: write a flight-recorder dump \
             (waveidx-flight/1 JSONL) per failing point under DIR \
             (--kill mode already keeps each failing point's directory \
             with a flight.jsonl inside)")
  in
  let concurrent =
    Arg.(
      value & flag
      & info [ "concurrent" ]
          ~doc:
            "interleave mid-transition probes under epoch snapshot \
             isolation in every sweep (twin and instances alike): the \
             fault schedule then also covers the epoch-swap and \
             reader-drain window, and each point additionally checks \
             that every served probe answered from exactly one \
             committed epoch")
  in
  let run w n days verbose cache_blocks write_back kill_dir double artifacts
      concurrent =
    if write_back && cache_blocks = None then begin
      Printf.eprintf "crashtest: --write-back requires --cache-blocks\n";
      exit 2
    end;
    if n < 1 || n > w then begin
      Printf.eprintf "crashtest: need 1 <= n <= w (got W=%d n=%d)\n" w n;
      exit 2
    end;
    if days < 1 then begin
      Printf.eprintf "crashtest: need at least one day to sweep\n";
      exit 2
    end;
    let techniques = [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ] in
    let icfg =
      Option.map
        (fun frames ->
          {
            Wave_storage.Index.default_config with
            Wave_storage.Index.cache_blocks = Some frames;
            cache_readahead = 2;
            cache_write_back = write_back;
          })
        cache_blocks
    in
    let sweep_days = List.init days (fun i -> w + 2 + i) in
    Printf.printf "crash sweep%s%s: W=%d n=%d days %d..%d, every fault point%s%s\n\n"
      (match kill_dir with None -> "" | Some _ -> " (kill-and-recover)")
      (if concurrent then " (concurrent probes in flight)" else "")
      w n
      (List.hd sweep_days)
      (List.nth sweep_days (days - 1))
      (match cache_blocks with
      | None -> ""
      | Some b ->
        Printf.sprintf ", %d-frame buffer pool%s" b
          (if write_back then " (write-back)" else ""))
      (match kill_dir with
      | None -> ""
      | Some d -> Printf.sprintf ", block files under %s" d);
    Printf.printf "%-10s" "scheme";
    List.iter
      (fun t -> Printf.printf " %18s" (Env.technique_name t))
      techniques;
    print_newline ();
    let failures = ref 0 in
    List.iter
      (fun scheme ->
        Printf.printf "%-10s" (Scheme.name scheme);
        List.iter
          (fun technique ->
            let reports =
              List.map
                (fun day ->
                  match kill_dir with
                  | None ->
                    let artifact_dir =
                      Option.map
                        (fun root ->
                          Filename.concat root
                            (Printf.sprintf "%s_%s_d%d" (Scheme.name scheme)
                               (Env.technique_name technique) day))
                        artifacts
                    in
                    Wave_sim.Crash_harness.sweep ?icfg ?artifact_dir
                      ~concurrent ~scheme ~technique ~w ~n ~day ()
                  | Some root ->
                    let dir =
                      Filename.concat root
                        (Printf.sprintf "%s_%s_d%d" (Scheme.name scheme)
                           (Env.technique_name technique) day)
                    in
                    Wave_sim.Crash_harness.kill_sweep ?icfg ~concurrent ~scheme
                      ~technique ~w ~n ~day ~dir ())
                sweep_days
            in
            let points =
              List.fold_left
                (fun a r -> a + List.length r.Wave_sim.Crash_harness.points)
                0 reports
            in
            let ok = List.for_all (fun r -> r.Wave_sim.Crash_harness.passed) reports in
            if not ok then incr failures;
            Printf.printf " %13s %4s"
              (Printf.sprintf "%d pts" points)
              (if ok then "ok" else "FAIL");
            if verbose || not ok then
              List.iter
                (fun r ->
                  if verbose || not r.Wave_sim.Crash_harness.passed then
                    print_string
                      (Format.asprintf "@.%a" Wave_sim.Crash_harness.pp_report
                         r))
                reports)
          techniques;
        print_newline ())
      Scheme.all;
    if double then begin
      Printf.printf
        "\ndouble faults (crash recovery, recover again; 0 pts = recovery \
         charges no I/O)\n";
      Printf.printf "%-10s" "scheme";
      List.iter
        (fun t -> Printf.printf " %18s" (Env.technique_name t))
        techniques;
      print_newline ();
      List.iter
        (fun scheme ->
          Printf.printf "%-10s" (Scheme.name scheme);
          List.iter
            (fun technique ->
              let reports =
                List.map
                  (fun day ->
                    Wave_sim.Crash_harness.sweep_double ?icfg ~scheme
                      ~technique ~w ~n ~day ())
                  sweep_days
              in
              let points =
                List.fold_left
                  (fun a r ->
                    a + List.length r.Wave_sim.Crash_harness.dr_points)
                  0 reports
              in
              let ok =
                List.for_all
                  (fun r -> r.Wave_sim.Crash_harness.dr_passed)
                  reports
              in
              if not ok then incr failures;
              Printf.printf " %13s %4s"
                (Printf.sprintf "%d pts" points)
                (if ok then "ok" else "FAIL");
              if verbose || not ok then
                List.iter
                  (fun r ->
                    if verbose || not r.Wave_sim.Crash_harness.dr_passed then
                      print_string
                        (Format.asprintf "@.%a"
                           Wave_sim.Crash_harness.pp_double_report r))
                  reports)
            techniques;
          print_newline ())
        Scheme.all
    end;
    if !failures > 0 then begin
      Printf.printf "\n%d combination(s) FAILED\n" !failures;
      exit 1
    end
    else print_string "\nall combinations recovered consistently\n"
  in
  Cmd.v (Cmd.info "crashtest" ~doc)
    Term.(
      const run $ w $ n $ days $ verbose $ cache_blocks $ write_back $ kill_dir
      $ double $ artifacts $ concurrent)

let shardtest_cmd =
  let doc =
    "Crash sweep of the shard-split transition: an uncrashed twin discovers \
     every disk fault point of a split (on the victim's disk and on the \
     fresh sibling's), then a fresh router is killed at each point and \
     recovered — recovery must land on exactly one committed shard map, \
     with probes bit-identical to the pre-split reference, no leaked \
     extents, and the split re-runnable to completion."
  in
  let w =
    Arg.(value & opt int 4 & info [ "window"; "w" ] ~doc:"window length in days")
  in
  let n = Arg.(value & opt int 2 & info [ "indexes"; "n" ] ~doc:"constituents") in
  let partition =
    Arg.(
      value
      & opt partition_conv Wave_shard.Partition.Hash
      & info [ "partition" ] ~docv:"KIND" ~doc:"hash | range")
  in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"arms before the split")
  in
  let artifacts =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts" ] ~docv:"DIR"
          ~doc:
            "write each failing point's flight-recorder dump (waveidx-flight/1 \
             JSONL) under $(docv); nothing is written when the sweep passes")
  in
  let run w n partition shards artifacts =
    if n < 1 || n > w then begin
      Printf.eprintf "shardtest: need 1 <= n <= w (got W=%d n=%d)\n" w n;
      exit 2
    end;
    if shards < 2 then begin
      Printf.eprintf "shardtest: need at least 2 shards\n";
      exit 2
    end;
    let results, table =
      Wave_shard.Sweep.sweep_matrix ?artifact_dir:artifacts ~shards ~partition
        ~w ~n ()
    in
    print_string table;
    let total =
      List.fold_left
        (fun a r -> a + List.length r.Wave_shard.Sweep.points)
        0 results
    in
    let failed =
      List.concat_map
        (fun r ->
          List.filter_map
            (fun p ->
              if Wave_shard.Sweep.point_passed p then None
              else
                Some
                  (Format.asprintf "%s/%s %s %a"
                     (Scheme.name r.Wave_shard.Sweep.scheme)
                     (Env.technique_name r.Wave_shard.Sweep.technique)
                     (if p.Wave_shard.Sweep.on_sibling then "sibling"
                      else "victim")
                     Wave_disk.Disk.pp_fault_point p.Wave_shard.Sweep.point))
            r.Wave_shard.Sweep.points)
        results
    in
    Printf.printf "\n%d fault points, %d recovered, %d failed\n" total
      (total - List.length failed)
      (List.length failed);
    if failed <> [] then begin
      List.iter (fun f -> Printf.eprintf "FAILED %s\n" f) failed;
      exit 1
    end
  in
  Cmd.v (Cmd.info "shardtest" ~doc)
    Term.(const run $ w $ n $ partition $ shards $ artifacts)

let () =
  let doc = "Wave-Indices (SIGMOD 1997) reproduction driver" in
  let info = Cmd.info "waveidx" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        list_cmd; run_cmd; all_cmd; sim_cmd; model_cmd; trace_cmd;
        profile_cmd; bench_cmd; checkpoint_cmd; recover_cmd; crashtest_cmd;
        shardtest_cmd;
      ]
  in
  (* [~catch:false] so an uncaught exception reaches this handler: the
     flight recorder and any armed trace flush path are the black box —
     persist both before the process dies, then re-raise with the
     original backtrace. *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Wave_obs.Sink.flush_traces ~reason:"uncaught exception";
    let path =
      match Wave_obs.Recorder.dump_path () with
      | Some p -> p
      | None -> "waveidx-flight.jsonl"
    in
    (try
       Wave_obs.Recorder.dump_to
         ~reason:("uncaught exception: " ^ Printexc.to_string e)
         path;
       Printf.eprintf "waveidx: flight recorder dumped to %s\n" path
     with Sys_error _ -> ());
    Printexc.raise_with_backtrace e bt
