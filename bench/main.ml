(* Benchmark harness.

   Running this executable regenerates every artifact of the paper's
   evaluation (Tables 1-12, Figures 2-11, Theorems 2-3, plus the
   model-vs-implementation cross-check), then times the implementation
   itself with Bechamel: probe/scan/transition/build costs per scheme
   and technique, and the substrate data structures.

     dune exec bench/main.exe                                          *)

open Bechamel
open Toolkit
open Wave_core
open Wave_storage

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate every table and figure                          *)
(* ------------------------------------------------------------------ *)

let regenerate () =
  print_string (Wave_experiments.Experiment.run_all ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2: micro-benchmarks of the implementation                     *)
(* ------------------------------------------------------------------ *)

let store =
  Wave_workload.Netnews.store
    { Wave_workload.Netnews.default_config with Wave_workload.Netnews.mean_postings = 200 }

let ready_scheme kind technique =
  let env = Env.create ~store ~technique ~w:7 ~n:3 () in
  let s = Scheme.start kind env in
  Scheme.advance_to s 14;
  s

(* Table 9 / Figures 5-8 ingredient: TimedIndexProbe per scheme. *)
let bench_probe kind =
  let s = ready_scheme kind Env.In_place in
  let d = Scheme.current_day s in
  Test.make
    ~name:(Printf.sprintf "probe/%s" (Scheme.name kind))
    (Staged.stage (fun () ->
         ignore
           (Frame.timed_index_probe (Scheme.frame s) ~t1:(d - 6) ~t2:d ~value:1)))

(* Table 9 ingredient: TimedSegmentScan, packed vs unpacked layout. *)
let bench_scan kind technique label =
  let s = ready_scheme kind technique in
  let d = Scheme.current_day s in
  Test.make
    ~name:(Printf.sprintf "scan/%s" label)
    (Staged.stage (fun () ->
         ignore (Frame.timed_segment_scan (Scheme.frame s) ~t1:(d - 6) ~t2:d)))

(* Figure 4 / Tables 10-11 ingredient: one daily transition. *)
let bench_transition kind technique =
  let s = ready_scheme kind technique in
  Test.make
    ~name:
      (Printf.sprintf "transition/%s/%s" (Scheme.name kind)
         (Env.technique_name technique))
    (Staged.stage (fun () -> Scheme.transition s))

(* Build vs incremental add (the Build/Add parameters of Table 12). *)
let bench_build =
  let cfg = Index.default_config in
  Test.make ~name:"index/build-1-day"
    (Staged.stage (fun () ->
         let disk = Index.make_disk cfg in
         let idx = Index.build disk cfg [ store 1 ] in
         Index.drop idx))

let bench_add =
  let cfg = Index.default_config in
  Test.make ~name:"index/add-1-day"
    (Staged.stage (fun () ->
         let disk = Index.make_disk cfg in
         let idx = Index.create_empty disk cfg in
         Index.add_batch idx (store 1);
         Index.drop idx))

let bench_pack =
  let cfg = Index.default_config in
  Test.make ~name:"index/packed-shadow-1-day"
    (Staged.stage (fun () ->
         let disk = Index.make_disk cfg in
         let idx = Index.build disk cfg [ store 1 ] in
         let packed = Index.pack idx ~drop_days:(fun _ -> false) ~extra:[ store 2 ] in
         Index.drop idx;
         Index.drop packed))

(* Figure 11 ingredient: the 200-day size-only WATA* replay. *)
let bench_wata_replay =
  let sizes =
    Array.init 200 (fun i ->
        Wave_workload.Netnews.daily_volume Wave_workload.Netnews.default_config (i + 1))
  in
  Test.make ~name:"fig11/wata-size-replay-200d"
    (Staged.stage (fun () -> ignore (Wave_sim.Wata_size.replay ~w:7 ~n:4 ~sizes)))

(* Substrate: B+tree directory and Zipf sampling. *)
let bench_btree_insert =
  Test.make ~name:"substrate/btree-insert-1k"
    (Staged.stage (fun () ->
         let t = Btree.create ~order:32 () in
         for k = 1 to 1000 do
           Btree.insert t ((k * 7919) mod 10_007) k
         done))

let bench_btree_find =
  let t = Btree.create ~order:32 () in
  let () =
    for k = 1 to 10_000 do
      Btree.insert t k k
    done
  in
  Test.make ~name:"substrate/btree-find"
    (Staged.stage
       (let i = ref 0 in
        fun () ->
          incr i;
          ignore (Btree.find t (1 + (!i mod 10_000)))))

let bench_zipf =
  let z = Wave_util.Zipf.create ~n:50_000 ~s:1.0 in
  let prng = Wave_util.Prng.create 5 in
  Test.make ~name:"substrate/zipf-sample"
    (Staged.stage (fun () -> ignore (Wave_util.Zipf.sample z prng)))

(* Analytic model evaluation speed (the experiment drivers call it in
   tight sweeps). *)
let bench_model =
  let p = Wave_model.Scenario.scam.Wave_model.Scenario.params in
  Test.make ~name:"model/evaluate-scam"
    (Staged.stage (fun () ->
         ignore
           (Wave_model.Cost.evaluate p ~scheme:Scheme.Reindex
              ~technique:Env.Simple_shadow ~w:7 ~n:4)))

(* Extensions: boolean query engine, text pipeline, codec, offline DP. *)
let bench_query_engine =
  let s =
    let env = Env.create ~store ~w:7 ~n:3 () in
    let s = Scheme.start Scheme.Del env in
    Scheme.advance_to s 14;
    s
  in
  let q =
    Query.Diff
      ( Query.And [ Query.Word 1; Query.Or [ Query.Word 2; Query.Word 3 ] ],
        Query.Word 4 )
  in
  Test.make ~name:"ext/boolean-query"
    (Staged.stage (fun () -> ignore (Query.eval_window s q)))

let bench_tokenizer =
  let text =
    String.concat " "
      (List.init 40 (fun i -> Printf.sprintf "word%d, And SOME punctuation!" i))
  in
  Test.make ~name:"ext/tokenize-1kb"
    (Staged.stage (fun () -> ignore (Wave_text.Tokenizer.tokens text)))

let bench_codec =
  let b = store 3 in
  let encoded = Wave_storage.Codec.encode_batch b in
  Test.make ~name:"ext/codec-roundtrip"
    (Staged.stage (fun () ->
         match Wave_storage.Codec.decode_batch encoded with
         | Ok _ -> ()
         | Error e -> failwith e))

let bench_offline_dp =
  let sizes =
    Array.init 80 (fun i ->
        Wave_workload.Netnews.daily_volume Wave_workload.Netnews.default_config (i + 1))
  in
  Test.make ~name:"ext/offline-optimal-80d"
    (Staged.stage (fun () ->
         ignore (Wave_sim.Wata_offline.optimal ~w:7 ~n:3 ~sizes)))

let groups =
  [
    ( "queries (Table 9, Figures 5-8)",
      List.map bench_probe Scheme.all
      @ [
          bench_scan Scheme.Del Env.In_place "DEL/unpacked";
          bench_scan Scheme.Del Env.Packed_shadow "DEL/packed";
          bench_scan Scheme.Reindex Env.In_place "REINDEX/packed";
          bench_scan Scheme.Wata_star Env.In_place "WATA*/soft-window";
        ] );
    ( "transitions (Figure 4, Tables 10-11)",
      List.concat_map
        (fun kind ->
          [
            bench_transition kind Env.In_place;
            bench_transition kind Env.Packed_shadow;
          ])
        Scheme.all );
    ("index operations (Table 12's Build/Add)", [ bench_build; bench_add; bench_pack ]);
    ( "traces and substrate",
      [ bench_wata_replay; bench_btree_insert; bench_btree_find; bench_zipf; bench_model ]
    );
    ( "extensions",
      [ bench_query_engine; bench_tokenizer; bench_codec; bench_offline_dp ] );
  ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  List.iter
    (fun (group, tests) ->
      Printf.printf "\n## bench group: %s\n" group;
      List.iter
        (fun test ->
          let results = Benchmark.all cfg [ instance ] test in
          let analyzed = Analyze.all ols instance results in
          Hashtbl.iter
            (fun name ols_result ->
              match Analyze.OLS.estimates ols_result with
              | Some [ ns ] -> Printf.printf "  %-42s %12.0f ns/run\n" name ns
              | _ -> Printf.printf "  %-42s (no estimate)\n" name)
            analyzed)
        tests)
    groups

(* ------------------------------------------------------------------ *)
(* Part 3: machine-readable quick mode (main.exe --json PATH)         *)
(* ------------------------------------------------------------------ *)

(* Wall-clock alternative to the Bechamel run above: times a
   representative subset with calibrated repetition and writes
   {name, p50, p95, runs} records — the same schema `waveidx bench
   --json` emits for the model-disk numbers — so CI can diff either
   artifact without parsing Bechamel's OLS output.  Skips the (slow)
   artifact regeneration. *)

let json_benchmarks () =
  let probe kind =
    let s = ready_scheme kind Env.In_place in
    let d = Scheme.current_day s in
    ( Printf.sprintf "probe/%s" (Scheme.name kind),
      fun () ->
        ignore
          (Frame.timed_index_probe (Scheme.frame s) ~t1:(d - 6) ~t2:d ~value:1)
    )
  in
  let scan kind technique label =
    let s = ready_scheme kind technique in
    let d = Scheme.current_day s in
    ( Printf.sprintf "scan/%s" label,
      fun () -> ignore (Frame.timed_segment_scan (Scheme.frame s) ~t1:(d - 6) ~t2:d)
    )
  in
  let transition kind technique =
    let s = ready_scheme kind technique in
    ( Printf.sprintf "transition/%s/%s" (Scheme.name kind)
        (Env.technique_name technique),
      fun () -> Scheme.transition s )
  in
  List.map probe Scheme.all
  @ [
      scan Scheme.Del Env.In_place "DEL/unpacked";
      scan Scheme.Del Env.Packed_shadow "DEL/packed";
    ]
  @ List.concat_map
      (fun kind -> [ transition kind Env.In_place; transition kind Env.Packed_shadow ])
      Scheme.all
  @ [
      ( "index/build-1-day",
        fun () ->
          let cfg = Index.default_config in
          let disk = Index.make_disk cfg in
          let idx = Index.build disk cfg [ store 1 ] in
          Index.drop idx );
      ( "substrate/zipf-sample",
        let z = Wave_util.Zipf.create ~n:50_000 ~s:1.0 in
        let prng = Wave_util.Prng.create 5 in
        fun () -> ignore (Wave_util.Zipf.sample z prng) );
    ]

let time_thunk f =
  (* Calibrate the repetition count so each sample spans at least 100us
     of wall clock — individual calls can be faster than the clock's
     resolution. *)
  let rec calibrate reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= 1e-4 || reps >= 1 lsl 20 then (reps, dt) else calibrate (reps * 2)
  in
  let reps, _ = calibrate 1 in
  fun () ->
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps

let measure_json () =
  let runs = 25 in
  List.map
    (fun (name, f) ->
      for _ = 1 to 3 do
        f ()
      done;
      let sample = time_thunk f in
      let xs = Array.init runs (fun _ -> sample ()) in
      ( name,
        Wave_util.Stats.percentile xs 50.0,
        Wave_util.Stats.percentile xs 95.0,
        runs ))
    (json_benchmarks ())

let run_json path =
  let results = measure_json () in
  let runs = 25 in
  let open Wave_obs.Json in
  let j =
    Obj
      [
        ("schema", Str "waveidx-bench/1");
        ("unit", Str "wall-seconds");
        ("runs_per_benchmark", int runs);
        ( "benchmarks",
          Arr
            (List.map
               (fun (name, p50, p95, r) ->
                 Obj
                   [
                     ("name", Str name);
                     ("p50", Num p50);
                     ("p95", Num p95);
                     ("runs", int r);
                   ])
               results) );
      ]
  in
  let oc = open_out path in
  output_string oc (to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d benchmarks, wall-clock)\n" path (List.length results)

(* Wall-clock regression gate: re-measure the quick subset and compare
   against a committed baseline.  The default threshold is much looser
   than `waveidx bench --compare`'s model-second gate because wall
   clock is machine- and load-dependent. *)
let run_compare ~baseline ~threshold =
  match Wave_obs.Sink.bench_series_file baseline with
  | Error e ->
    Printf.eprintf "bench --compare: %s\n" e;
    exit 1
  | Ok base ->
    let current =
      List.map
        (fun (name, p50, p95, _) ->
          { Wave_obs.Sink.series_name = name; series_p50 = p50; series_p95 = p95 })
        (measure_json ())
    in
    let cmp =
      Wave_obs.Sink.compare_bench ~threshold_pct:threshold ~baseline:base
        ~current
    in
    Printf.printf "regression gate vs %s (threshold %.1f%%, wall-clock):\n%s"
      baseline threshold
      (Wave_obs.Sink.comparison_report cmp);
    if not (Wave_obs.Sink.bench_ok cmp) then exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: "--json" :: path :: "--compare" :: baseline :: rest ->
    run_json path;
    let threshold =
      match rest with
      | "--threshold" :: t :: _ -> float_of_string t
      | _ -> 25.0
    in
    run_compare ~baseline ~threshold
  | _ :: "--json" :: path :: _ -> run_json path
  | _ :: "--compare" :: baseline :: rest ->
    let threshold =
      match rest with
      | "--threshold" :: t :: _ -> float_of_string t
      | _ -> 25.0
    in
    run_compare ~baseline ~threshold
  | _ ->
    regenerate ();
    print_endline "============================================================";
    print_endline "Implementation micro-benchmarks (Bechamel, wall-clock)";
    print_endline "============================================================";
    run_benchmarks ()
